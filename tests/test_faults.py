"""Chaos suite: deterministic fault injection against the sweep stack.

The acceptance loop injects a fault at every instrumented site of a
queue sweep — fs errors in store/queue I/O, worker crashes (real
``os._exit`` in spawned processes), clock skew, corrupt persisted LU
factors — and asserts the sweep still converges to exactly the no-fault
oracle: same keys, same metrics (``runtime_s`` and ``degradations``
excluded, like every oracle comparison over flows).  Alongside it:
quarantine semantics (a poison job lands in ``quarantine/`` exactly
once, via both the executor-failure and the crash-steal path), fencing
under injected clock skew, SIGTERM lease release, failure-record
hygiene, and the fault-plan/`retry_io` primitives themselves.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import faults
from repro.core.faults import (
    CRASH_EXIT_CODE,
    DegradationWarning,
    FaultPlan,
    InjectedFault,
    TornWriteFault,
    injected,
    retry_io,
)
from repro.core.queue import WorkQueue, run_worker
from repro.core.results import FlowMetrics
from repro.core.store import ResultsStore


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    """No fault plan may leak between tests (or in from the environment)."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.clear_plan()
    yield
    faults.clear_plan()


def _metrics(tag=1.0):
    return FlowMetrics(
        benchmark="n100",
        mode="power_aware",
        spatial_entropy_s1=0.8,
        correlation_r1=float(tag),
        spatial_entropy_s2=0.7,
        correlation_r2=0.4,
        power_w=8.0,
        critical_delay_ns=1.5,
        wirelength_m=2.0,
        peak_temp_k=330.0,
        signal_tsvs=120,
        dummy_tsvs=32,
        voltage_volumes=5,
        runtime_s=1.0,
        feasible=True,
    )


def _execute(payload):
    return _metrics(payload["tag"])


def _frozen(metrics):
    out = metrics.to_dict()
    out.pop("runtime_s")
    out.pop("degradations", None)
    return out


def _oracle(jobs):
    """What a fault-free sweep must produce, computed without any queue."""
    return {key: _frozen(_execute(payload)) for key, payload in jobs.items()}


# -- fault plan & spec primitives -------------------------------------------------


class TestFaultSpecParsing:
    def test_full_grammar_round_trip(self):
        plan = FaultPlan.from_spec(
            "store.append=eio@after:2; queue.lease=torn, clock=skew:400@every:3;"
            "worker.after_claim=crash@prob:0.5:42"
        )
        sites = {s.site: s for s in plan.specs}
        assert sites["store.append"].action == "eio"
        assert sites["store.append"].trigger == "after"
        assert sites["store.append"].n == 2
        assert sites["queue.lease"].trigger == "always"
        assert sites["clock"].param == pytest.approx(400.0)
        assert sites["worker.after_claim"].p == pytest.approx(0.5)
        assert sites["worker.after_claim"].seed == 42

    @pytest.mark.parametrize(
        "bad",
        [
            "no-equals-sign",
            "site=unknowable",
            "site=eio@sometimes",
            "site=eio@after:x",
            "site=eio@prob:1.5",
            "=eio",
            "clock=skew",  # skew without seconds
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(bad)

    def test_after_fires_exactly_once_on_nth(self):
        plan = FaultPlan.from_spec("s=raise@after:3")
        fired = []
        for _ in range(6):
            try:
                plan.fault_point("s")
                fired.append(False)
            except InjectedFault:
                fired.append(True)
        assert fired == [False, False, True, False, False, False]
        assert plan.report()["s"] == {"arrivals": 6, "fires": 1}

    def test_every_fires_on_multiples(self):
        plan = FaultPlan.from_spec("s=raise@every:2")
        outcomes = []
        for _ in range(6):
            try:
                plan.fault_point("s")
                outcomes.append(False)
            except InjectedFault:
                outcomes.append(True)
        assert outcomes == [False, True, False, True, False, True]

    def test_prob_trigger_deterministic_per_seed(self):
        def fires(seed):
            plan = FaultPlan.from_spec(f"s=fail@prob:0.5:{seed}")
            return [plan.fires("s") for _ in range(32)]

        assert fires(7) == fires(7)  # same seed, same sequence
        assert fires(7) != fires(8)  # seeds actually matter
        assert any(fires(7)) and not all(fires(7))

    def test_env_plan_installed_and_cached(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "s=raise")
        plan = faults.active_plan()
        assert plan is not None and plan.from_env
        assert faults.active_plan() is plan  # cached against the raw value
        monkeypatch.setenv("REPRO_FAULTS", "s=raise@after:99")
        assert faults.active_plan() is not plan  # value change re-parses
        monkeypatch.delenv("REPRO_FAULTS")
        assert faults.active_plan() is None

    def test_programmatic_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "s=raise")
        with injected("other=raise") as plan:
            assert faults.active_plan() is plan
        assert faults.active_plan().from_env

    def test_injected_scope_clears_on_exit(self):
        with injected("s=raise"):
            with pytest.raises(InjectedFault):
                faults.fault_point("s")
        faults.fault_point("s")  # no plan, no fault

    def test_clock_skew_shifts_now(self):
        t0 = time.time()
        with injected("clock=skew:400"):
            assert faults.now() - t0 > 350.0
        assert abs(faults.now() - time.time()) < 5.0


class TestRetryIO:
    def test_transient_error_recovered_and_counted(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        before = faults.snapshot_degradations()
        assert retry_io(flaky, site="unit", base_delay=0.001) == "ok"
        assert len(calls) == 3
        assert faults.degradations_since(before)["io_retry.unit"] == 2

    def test_persistent_error_raises_after_budget(self):
        def always():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            retry_io(always, site="unit", attempts=3, base_delay=0.001)

    def test_file_exists_never_retried(self):
        """FileExistsError is the O_EXCL *success* signal of lease
        arbitration; retrying it would turn 'someone else holds the
        lease' into a busy loop."""
        calls = []

        def exists():
            calls.append(1)
            raise FileExistsError("held elsewhere")

        with pytest.raises(FileExistsError):
            retry_io(exists, site="unit", base_delay=0.001)
        assert len(calls) == 1


# -- the acceptance chaos loop ----------------------------------------------------

#: five cheap deterministic jobs every chaos sweep runs
_JOBS = {f"job{i}": {"tag": float(i)} for i in range(5)}

#: non-crash fault sites: injected into an in-process worker, which must
#: survive via retry_io / retry budgets and still match the oracle
_FS_FAULT_SPECS = [
    "store.append=eio@after:1",
    "store.append=torn@after:2",
    "store.append=enospc@every:3",
    "queue.lease=eio@after:1",
    "queue.fence=eio@after:2",
    "queue.complete=raise@after:1",
    "clock=skew:400",
]


def _chaos_queue(root, **kw):
    kw.setdefault("lease_ttl", 0.6)
    kw.setdefault("max_attempts", 4)
    kw.setdefault("retry_backoff", 0.01)
    kw.setdefault("max_steals", 10)
    return WorkQueue(root, **kw)


class TestChaosLoopInProcess:
    @pytest.mark.parametrize("spec", _FS_FAULT_SPECS)
    def test_sweep_converges_to_oracle_under_fault(self, tmp_path, spec):
        queue = _chaos_queue(tmp_path)
        for key, payload in _JOBS.items():
            queue.enqueue(key, payload)
        with injected(spec) as plan:
            run_worker(queue, _execute, worker_id="chaos", poll_interval=0.02)
            report = plan.report()
        site = spec.split("=", 1)[0]
        assert report[site]["arrivals"] > 0, f"{site} was never exercised"
        if "@prob" not in spec:
            assert report[site]["fires"] > 0, f"{site} never actually fired"
        merged = queue.merge().completed()
        assert {k: _frozen(m) for k, m in merged.items()} == _oracle(_JOBS)
        # even the queue.complete fault (raised *after* the shard append)
        # leaves no unresolved failure: the record is durable, so the
        # failure entry resolves against the completed key
        assert queue.status().failed == 0

    def test_failure_record_write_survives_injected_eio(self, tmp_path):
        """The queue.failure site itself: a failing job whose *failure
        record write* also hits EIO still retries and completes."""
        queue = _chaos_queue(tmp_path, max_attempts=2)
        queue.enqueue("flaky", {"tag": 2.0})
        attempts = []

        def flaky(payload):
            attempts.append(1)
            if len(attempts) < 2:
                raise ValueError("first attempt fails")
            return _execute(payload)

        with injected("queue.failure=eio@after:1") as plan:
            run_worker(queue, flaky, worker_id="w0", poll_interval=0.02)
            assert plan.report()["queue.failure"]["fires"] == 1
        merged = queue.merge().completed()
        assert merged["flaky"].correlation_r1 == pytest.approx(2.0)
        assert queue.status().failed == 0

    def test_torn_injection_leaves_healable_half_line(self, tmp_path):
        """The torn action writes a real half line before raising, and the
        retry (same append call) heals it — exactly the crash-mid-write
        sequence the store's newline healing exists for."""
        store = ResultsStore(tmp_path)
        with injected("store.append=torn@after:1"):
            store.append("a", _metrics(1))
        raw = store.path.read_text(encoding="utf-8")
        lines = raw.splitlines()
        assert len(lines) == 2  # the torn half line, then the good record
        with pytest.raises(json.JSONDecodeError):
            json.loads(lines[0])
        assert json.loads(lines[1])["key"] == "a"
        assert set(ResultsStore(tmp_path).completed()) == {"a"}

    def test_persistent_store_fault_fails_job_not_worker(self, tmp_path):
        """A store fault outlasting the retry budget becomes a recorded
        per-job failure (then a retry, then quarantine) — never an
        unhandled exception out of run_worker."""
        queue = _chaos_queue(tmp_path, max_attempts=2)
        queue.enqueue("doomed", {"tag": 1.0})
        with injected("store.append=eio"):
            run_worker(queue, _execute, worker_id="w0", poll_interval=0.02)
        assert "doomed" in queue.quarantined()
        assert queue.drained()


def _chaos_worker(queue_dir, spec, worker_id):
    """Spawned chaos worker: installs the plan, then drains the queue.

    Crash actions take the whole process down via ``os._exit`` — exactly
    like a SIGKILL mid-job — so the parent asserts on the exit code and
    lets a clean survivor finish the sweep.
    """
    faults.install_plan(FaultPlan.from_spec(spec))
    queue = _chaos_queue(queue_dir)
    run_worker(queue, _execute, worker_id=worker_id, wait=False, poll_interval=0.02)


_CRASH_SPECS = [
    # dies right after claiming: job untouched, lease stranded
    "worker.after_claim=crash@after:1",
    # dies after executing but before completing: result lost with it
    "worker.after_execute=crash@after:1",
    # dies inside the shard append: a genuinely torn shard line
    "store.append=crash@after:1",
]


class TestChaosLoopCrashes:
    @pytest.mark.parametrize("spec", _CRASH_SPECS)
    def test_crashed_worker_recovered_by_survivor(self, tmp_path, spec):
        queue = _chaos_queue(tmp_path)
        for key, payload in _JOBS.items():
            queue.enqueue(key, payload)
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_chaos_worker, args=(str(tmp_path), spec, "doomed"))
        proc.start()
        proc.join(timeout=120.0)
        assert proc.exitcode == CRASH_EXIT_CODE, f"worker survived {spec}"
        # the survivor runs clean (no plan), waits out the stranded lease,
        # reclaims at a higher fencing epoch, and finishes the sweep
        run_worker(queue, _execute, worker_id="survivor", poll_interval=0.02)
        merged = queue.merge().completed()
        assert {k: _frozen(m) for k, m in merged.items()} == _oracle(_JOBS)
        status = queue.status()
        assert status.failed == 0 and status.stale == []


class TestZombieFencing:
    def test_skewed_zombie_commit_discarded_by_merge(self, tmp_path):
        """The NFS-clock-skew scenario fencing exists for: a worker's
        lease is (wrongly, from its point of view) reclaimed, both it and
        the stealer complete the job, and only the stealer's record — the
        one at the live epoch — survives the merge."""
        queue = _chaos_queue(tmp_path, lease_ttl=0.3)
        queue.enqueue("contested", {"tag": 1.0})
        zombie_lease = queue.claim("zombie")
        assert zombie_lease is not None and zombie_lease.epoch == 1
        time.sleep(0.4)  # the zombie stalls; its lease expires
        stealer_lease = queue.claim("stealer")
        assert stealer_lease is not None and stealer_lease.epoch == 2
        # the zombie wakes up and finishes anyway — at its dead epoch
        queue.shard_for("zombie").append(
            "contested", _metrics(666), epoch=zombie_lease.epoch
        )
        zombie_lease.release()  # guarded: must NOT drop the stealer's lease
        assert queue._lease_path("contested").exists()
        queue.complete(stealer_lease, _metrics(2), "stealer")
        merged = queue.merge().completed()
        assert merged["contested"].correlation_r1 == pytest.approx(2.0)

    def test_zombie_first_merge_superseded_by_live_record(self, tmp_path):
        """Even if the zombie's record was merged *before* the fence
        advanced, the next merge supersedes it with the live-epoch one."""
        queue = _chaos_queue(tmp_path)
        queue.shard_for("zombie").append("k", _metrics(666), epoch=1)
        queue.merge()
        assert queue.store.completed()["k"].correlation_r1 == pytest.approx(666.0)
        # reclamation bumps the fence, survivor re-runs the job
        queue._write_fence("k", epoch=2, steals=1)
        queue.shard_for("survivor").append("k", _metrics(2), epoch=2)
        merged = queue.merge().completed()
        assert merged["k"].correlation_r1 == pytest.approx(2.0)


# -- retry budgets, backoff, quarantine -------------------------------------------


class TestRetryAndQuarantine:
    def test_flaky_job_succeeds_within_budget(self, tmp_path):
        queue = _chaos_queue(tmp_path, max_attempts=3)
        queue.enqueue("flaky", {"tag": 5.0})
        attempts = []

        def flaky(payload):
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError(f"transient failure {len(attempts)}")
            return _metrics(payload["tag"])

        run_worker(queue, flaky, worker_id="w0", poll_interval=0.02)
        assert len(attempts) == 3
        assert queue.status().failed == 0
        merged = queue.merge().completed()
        assert merged["flaky"].correlation_r1 == pytest.approx(5.0)

    def test_backoff_gates_reclaim_until_next_retry_at(self, tmp_path):
        queue = WorkQueue(
            tmp_path, lease_ttl=60.0, max_attempts=2, retry_backoff=0.4
        )
        queue.enqueue("j", {})
        lease = queue.claim("w0")
        queue.record_failure(lease, "first failure", "w0")
        record = queue.failures()["j"]
        assert record["attempt"] == 1
        assert record["next_retry_at"] > record["time"]
        assert queue.claim("w0") is None  # backoff window still open
        assert not queue.drained()  # retry budget remains: not drained
        time.sleep(0.6)
        retry = queue.claim("w0")
        assert retry is not None and retry.key == "j"

    def test_exhausted_budget_quarantines_exactly_once(self, tmp_path):
        """The acceptance criterion: a job exceeding max_attempts lands in
        quarantine/ exactly once, and sweep-status reports it."""
        queue = _chaos_queue(tmp_path, max_attempts=2)
        queue.enqueue("poison", {})
        queue.enqueue("fine", {"tag": 3.0})

        def poison_exec(payload):
            if "tag" not in payload:
                raise ValueError("always fails")
            return _metrics(payload["tag"])

        run_worker(queue, poison_exec, worker_id="w0", poll_interval=0.02)
        qdir_files = list(queue.quarantine_dir.glob("*.json"))
        assert len(qdir_files) == 1  # exactly one quarantine record
        record = queue.quarantined()["poison"]
        assert record["attempts"] == 2
        assert record["worker"] == "w0"
        status = queue.status()
        assert status.failed == 1 and status.completed == 1
        assert set(status.quarantined) == {"poison"}
        assert queue.drained()  # quarantine resolves the job
        # no worker will ever claim it again...
        assert queue.claim("w1") is None
        # ...until an operator explicitly opts it back in
        queue.clear_failure("poison")
        assert list(queue.quarantine_dir.glob("*.json")) == []
        lease = queue.claim("w1")
        assert lease is not None and lease.key == "poison"

    def test_crash_looping_job_quarantined_via_steal_budget(self, tmp_path):
        """A job that kills workers before they can even record a failure
        burns lease steals instead of attempts; exceeding max_steals
        quarantines it rather than grinding the pool forever."""
        queue = WorkQueue(tmp_path, lease_ttl=0.1, max_attempts=3, max_steals=1)
        queue.enqueue("killer", {})
        first = queue.claim("w0")
        assert first is not None
        time.sleep(0.2)  # w0 "crashed": lease expires unreleased
        second = queue.claim("w1")  # steal #1: within budget
        assert second is not None
        time.sleep(0.2)  # w1 crashed too
        assert queue.claim("w2") is None  # steal #2 exceeds the budget
        record = queue.quarantined()["killer"]
        assert "crash-looping" in record["reason"]
        assert queue.drained()

    def test_sweep_status_cli_reports_quarantine(self, tmp_path, capsys):
        from repro.cli import main

        queue = _chaos_queue(tmp_path, max_attempts=1)
        queue.enqueue("bad", {})
        lease = queue.claim("w0")
        queue.record_failure(lease, "boom", "w0")
        # an unhealthy queue is an exit-code 1 (healthy-but-empty is 0),
        # so sweep-status can gate cron wrappers and CI on its own
        assert main(["sweep-status", "--queue-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "QUARANTINED bad" in out
        assert "quarantined 1" in out

    def test_work_cli_exits_nonzero_on_quarantined_job(self, tmp_path, capsys):
        from dataclasses import asdict

        from repro.cli import main
        from repro.exploration.study import BatchJob

        queue = WorkQueue(tmp_path)
        # a payload that is not a valid BatchJob: every execution fails
        queue.enqueue("broken", {"benchmark": "no-such-bench"})
        job = BatchJob(benchmark="n100", iterations=25, grid=12)
        queue.enqueue(job.key(), asdict(job))
        code = main([
            "work", "--queue-dir", str(tmp_path), "--workers", "1",
            "--max-attempts", "2", "--backoff", "0.01",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "QUARANTINED broken" in out
        # the healthy sibling still completed and was merged
        assert job.key() in ResultsStore(tmp_path).completed()


class TestFailureRecordHygiene:
    def test_error_truncated_and_fields_consistent(self, tmp_path):
        queue = WorkQueue(tmp_path, max_attempts=2)
        queue.enqueue("j", {})
        lease = queue.claim("worker-7")
        queue.record_failure(lease, "x" * 100_000, "worker-7")
        record = queue.failures()["j"]
        assert len(record["error"]) < 5000
        assert "truncated" in record["error"]
        assert record["attempt"] == 1
        assert record["worker"] == "worker-7"
        assert record["iso"].endswith("+00:00")  # ISO-8601, explicit UTC
        # short errors pass through untouched
        lease2 = queue.claim("worker-7")
        assert lease2 is None  # backoff window
        queue.clear_failure("j")
        lease2 = queue.claim("worker-8")
        queue.record_failure(lease2, "short", "worker-8")
        assert queue.failures()["j"]["error"] == "short"


# -- manifest index ---------------------------------------------------------------


class TestManifestIndex:
    def test_enqueue_appends_manifest_in_order(self, tmp_path):
        queue = WorkQueue(tmp_path)
        for i in range(4):
            queue.enqueue(f"job{i}", {})
        queue.enqueue("job0", {})  # idempotent: no duplicate line
        lines = [
            json.loads(line)["key"]
            for line in queue.manifest_path.read_text().splitlines()
            if line.strip()
        ]
        assert lines == [f"job{i}" for i in range(4)]
        assert queue._manifest_index() == lines

    def test_lost_manifest_healed_from_jobs_dir(self, tmp_path):
        """The crash window — job file durable, manifest append lost —
        heals on the next index read; so does a deleted manifest."""
        queue = WorkQueue(tmp_path)
        with injected("queue.manifest=eio"):
            queue.enqueue("silent", {"tag": 1.0})  # manifest append fails
        assert "silent" not in queue._manifest_entries()
        fresh = WorkQueue(tmp_path)
        assert fresh._manifest_index() == ["silent"]  # repaired by scan
        lease = fresh.claim("w0")
        assert lease is not None and lease.key == "silent"
        lease.release()
        os.unlink(fresh.manifest_path)
        assert WorkQueue(tmp_path)._manifest_index() == ["silent"]

    def test_claim_polls_manifest_not_jobs_dir(self, tmp_path, monkeypatch):
        """Once the index is warm, polling an unchanged queue does not
        rescan jobs/ (the O(jobs)-per-poll behaviour this index removed)."""
        queue = WorkQueue(tmp_path)
        for i in range(3):
            queue.enqueue(f"job{i}", {})
        queue._manifest_index()  # warm the memo

        def forbidden(*a, **kw):
            raise AssertionError("claim rescanned jobs/ on a warm manifest")

        monkeypatch.setattr(queue, "jobs", forbidden)
        lease = queue.claim("w0")
        assert lease is not None
        lease.release()


# -- graceful solver degradation --------------------------------------------------


class TestPersistedLUDegradation:
    def _cache_roundtrip(self, tmp_path):
        from repro.layout.die import StackConfig
        from repro.layout.grid import GridSpec
        from repro.thermal.steady_state import SolverCache

        cfg = StackConfig.square(1000.0)
        grid = GridSpec(cfg.outline, 8, 8)
        warm = SolverCache(disk_dir=tmp_path)
        solver = warm.solver(cfg, grid)
        files = list(tmp_path.glob("fact-*.npz"))
        assert len(files) == 1
        return cfg, grid, solver, files[0]

    def test_corrupt_lu_file_degrades_to_fresh_factorization(self, tmp_path):
        from repro.thermal.steady_state import SolverCache

        cfg, grid, oracle_solver, lu_path = self._cache_roundtrip(tmp_path)
        lu_path.write_bytes(lu_path.read_bytes()[: lu_path.stat().st_size // 2])
        cold = SolverCache(disk_dir=tmp_path)
        with pytest.warns(DegradationWarning, match="persisted_lu.load_failed"):
            survived = cold.solver(cfg, grid)
        pm = [np.full(grid.shape, 0.001) for _ in range(2)]
        a, b = survived.solve(pm), oracle_solver.solve(pm)
        assert np.allclose(a.nodal, b.nodal, rtol=1e-9)
        # the unreadable file was healed: a fresh factorization re-persisted
        reloaded = SolverCache(disk_dir=tmp_path).solver(cfg, grid)
        assert np.allclose(reloaded.solve(pm).nodal, b.nodal, rtol=1e-9)

    def test_injected_eio_on_lu_load_degrades_not_raises(self, tmp_path):
        from repro.thermal.steady_state import SolverCache

        cfg, grid, oracle_solver, _ = self._cache_roundtrip(tmp_path)
        cold = SolverCache(disk_dir=tmp_path)
        before = faults.snapshot_degradations()
        with injected("lu.load=eio@after:1"):
            with pytest.warns(DegradationWarning):
                survived = cold.solver(cfg, grid)
        assert faults.degradations_since(before)["persisted_lu.load_failed"] == 1
        pm = [np.full(grid.shape, 0.001) for _ in range(2)]
        assert np.allclose(
            survived.solve(pm).nodal, oracle_solver.solve(pm).nodal, rtol=1e-9
        )

    def test_injected_enospc_on_lu_save_is_survivable(self, tmp_path):
        from repro.thermal.steady_state import SolverCache

        cfg, grid, oracle_solver, lu_path = self._cache_roundtrip(tmp_path)
        lu_path.unlink()
        before = faults.snapshot_degradations()
        with injected("lu.save=enospc"):
            solver = SolverCache(disk_dir=tmp_path).solver(cfg, grid)
        assert faults.degradations_since(before)["persist.write_failed"] >= 1
        assert not list(tmp_path.glob("fact-*.npz"))  # nothing half-written
        pm = [np.full(grid.shape, 0.001) for _ in range(2)]
        assert np.allclose(
            solver.solve(pm).nodal, oracle_solver.solve(pm).nodal, rtol=1e-9
        )


class TestWoodburyDegradation:
    def _pair(self):
        from repro.layout.die import StackConfig
        from repro.layout.grid import GridSpec
        from repro.thermal.stack import build_stack

        cfg = StackConfig.square(2000.0)
        grid = GridSpec(cfg.outline, 12, 12)
        base = build_stack(cfg, grid)
        density = np.zeros(grid.shape)
        density[4:6, 4:8] = 0.55
        return grid, base, build_stack(cfg, grid, tsv_density=density)

    def test_forced_singular_core_falls_back_and_stays_exact(self):
        from repro.thermal.steady_state import SteadyStateSolver, WoodburySolver

        grid, base_stack, mod_stack = self._pair()
        base = SteadyStateSolver(base_stack)
        before = faults.snapshot_degradations()
        with injected("woodbury.singular_core=fail@after:1"):
            solver = WoodburySolver(base, mod_stack, crossover_rank=10_000)
        assert solver.fallback_reason == "singular-core"
        assert faults.degradations_since(before)[
            "woodbury.fallback.singular-core"
        ] == 1
        rng = np.random.default_rng(0)
        pm = [rng.random(grid.shape) * 0.01 for _ in range(2)]
        oracle = SteadyStateSolver(mod_stack).solve(pm)
        assert np.allclose(solver.solve(pm).nodal, oracle.nodal, rtol=1e-9)

    def test_forced_probe_failure_falls_back_and_stays_exact(self):
        from repro.thermal.steady_state import SteadyStateSolver, WoodburySolver

        grid, base_stack, mod_stack = self._pair()
        base = SteadyStateSolver(base_stack)
        before = faults.snapshot_degradations()
        with injected("woodbury.probe=fail@after:1"):
            solver = WoodburySolver(base, mod_stack, crossover_rank=10_000)
        assert solver.fallback_reason == "residual"
        assert faults.degradations_since(before)["woodbury.fallback.residual"] == 1
        rng = np.random.default_rng(1)
        pm = [rng.random(grid.shape) * 0.01 for _ in range(2)]
        oracle = SteadyStateSolver(mod_stack).solve(pm)
        assert np.allclose(solver.solve(pm).nodal, oracle.nodal, rtol=1e-9)


# -- SIGTERM: polite kills release the lease --------------------------------------


def _sigterm_worker(queue_dir, claimed_path):
    """Claim a job whose executor stalls; the parent SIGTERMs us."""
    def stall(payload):
        claimed_path_obj = claimed_path
        with open(claimed_path_obj, "w", encoding="utf-8") as fh:
            fh.write("claimed")
        time.sleep(600.0)

    queue = WorkQueue(queue_dir, lease_ttl=300.0)
    run_worker(queue, stall, worker_id="polite-victim", poll_interval=0.02)


class TestSigtermRelease:
    def test_sigterm_releases_lease_immediately(self, tmp_path):
        """A polite kill must not strand the lease until TTL expiry: the
        handler converts SIGTERM to SystemExit(143), run_worker releases
        the claim, and a survivor can claim the job at once — against a
        300 s TTL that SIGKILL recovery would have to wait out."""
        queue = WorkQueue(tmp_path, lease_ttl=300.0)
        queue.enqueue("j", {"tag": 4.0})
        claimed = tmp_path / "claimed.txt"
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_sigterm_worker, args=(str(tmp_path), str(claimed)))
        proc.start()
        try:
            deadline = time.time() + 60.0
            while not claimed.exists() and time.time() < deadline:
                time.sleep(0.02)
            assert claimed.exists(), "worker never claimed the job"
            os.kill(proc.pid, signal.SIGTERM)
            proc.join(timeout=30.0)
        finally:
            if proc.is_alive():  # pragma: no cover - sigterm failed
                proc.kill()
                proc.join()
        assert proc.exitcode == 143
        # the lease is already gone — no TTL wait, no stale entry
        assert list(queue.leases_dir.glob("*.lease")) == []
        assert queue.failures() == {}  # interrupted, not failed
        lease = queue.claim("survivor")
        assert lease is not None and lease.key == "j"
        queue.complete(lease, _metrics(4.0), "survivor")
        assert queue.drained()


# -- env-var plumbing to real spawned workers -------------------------------------


class TestEnvPlanInheritance:
    def test_spawned_interpreter_inherits_env_plan(self, tmp_path):
        """REPRO_FAULTS reaches a fresh interpreter with no code changes —
        the mechanism `cli work` pools rely on for chaos drills."""
        env = dict(os.environ)
        env["REPRO_FAULTS"] = "store.append=eio@after:1"
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        code = (
            "from repro.core import faults\n"
            "plan = faults.active_plan()\n"
            "assert plan is not None and plan.from_env\n"
            "import errno\n"
            "try:\n"
            "    faults.fault_point('store.append')\n"
            "    raise SystemExit('fault did not fire')\n"
            "except OSError as exc:\n"
            "    assert exc.errno == errno.EIO\n"
            "print('env-plan-ok')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env, cwd=os.getcwd(), capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert "env-plan-ok" in out.stdout


# -- randomized-seed chaos (CI logs the seed for reproduction) --------------------


class TestRandomizedChaos:
    def test_probabilistic_faults_converge_for_any_seed(self, tmp_path):
        """The non-blocking CI leg: REPRO_CHAOS_SEED randomizes the
        Bernoulli fault stream; retry budgets must absorb any draw.  The
        seed is printed so a failing draw is reproducible."""
        seed = int(os.environ.get("REPRO_CHAOS_SEED", "20260808"))
        print(f"REPRO_CHAOS_SEED={seed}")
        spec = (
            f"store.append=eio@prob:0.2:{seed};"
            f"queue.lease=eio@prob:0.1:{seed + 1}"
        )
        queue = _chaos_queue(tmp_path, max_attempts=6)
        for key, payload in _JOBS.items():
            queue.enqueue(key, payload)
        with injected(spec) as plan:
            run_worker(queue, _execute, worker_id="chaos", poll_interval=0.02)
            report = plan.report()
        assert report["store.append"]["arrivals"] > 0
        merged = queue.merge().completed()
        assert {k: _frozen(m) for k, m in merged.items()} == _oracle(_JOBS), (
            f"chaos sweep diverged for REPRO_CHAOS_SEED={seed}"
        )
