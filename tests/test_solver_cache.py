"""SolverCache reuse, batched solves, and multi-die TSV density handling."""

import numpy as np
import pytest

from repro.layout.die import StackConfig
from repro.layout.floorplan import Floorplan3D
from repro.layout.grid import GridSpec
from repro.layout.module import Module, Placement
from repro.layout.tsv import TSV, TSVKind
from repro.thermal.fast import FastThermalModel, per_die_attenuation
from repro.thermal.stack import build_stack, normalize_tsv_densities
from repro.thermal.steady_state import (
    SolverCache,
    SteadyStateSolver,
    solve_floorplan,
)


@pytest.fixture(scope="module")
def cfg_grid():
    cfg = StackConfig.square(1000.0)
    return cfg, GridSpec(cfg.outline, 8, 8)


class TestSolverCache:
    def test_hit_returns_same_solver(self, cfg_grid):
        cfg, grid = cfg_grid
        cache = SolverCache()
        density = np.zeros(grid.shape)
        density[2, 2] = 0.5
        a = cache.solver(cfg, grid, density)
        b = cache.solver(cfg, grid, density.copy())  # equal content, new array
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_different_density_misses(self, cfg_grid):
        cfg, grid = cfg_grid
        cache = SolverCache()
        a = cache.solver(cfg, grid, np.zeros(grid.shape))
        other = np.zeros(grid.shape)
        other[1, 1] = 1.0
        b = cache.solver(cfg, grid, other)
        assert a is not b
        assert cache.misses == 2 and cache.hits == 0

    def test_different_stack_kwargs_miss(self, cfg_grid):
        cfg, grid = cfg_grid
        cache = SolverCache()
        a = cache.solver(cfg, grid)
        b = cache.solver(cfg, grid, ambient=300.0)
        assert a is not b
        assert cache.misses == 2

    def test_none_equals_missing_density(self, cfg_grid):
        cfg, grid = cfg_grid
        cache = SolverCache()
        a = cache.solver(cfg, grid, None)
        b = cache.solver(cfg, grid)
        assert a is b and cache.hits == 1

    def test_lru_eviction(self, cfg_grid):
        cfg, grid = cfg_grid
        cache = SolverCache(maxsize=2)
        def density(v):
            d = np.zeros(grid.shape)
            d[0, 0] = v
            return d
        a = cache.solver(cfg, grid, density(0.1))
        cache.solver(cfg, grid, density(0.2))
        cache.solver(cfg, grid, density(0.3))  # evicts 0.1
        assert len(cache) == 2
        a2 = cache.solver(cfg, grid, density(0.1))
        assert a2 is not a  # was evicted, rebuilt
        assert cache.misses == 4

    def test_clear(self, cfg_grid):
        cfg, grid = cfg_grid
        cache = SolverCache()
        cache.solver(cfg, grid)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_fresh_cache_argument_is_honored(self, cfg_grid):
        """Regression: ``cache or default`` discarded a caller's empty
        cache (SolverCache defines __len__, so a fresh one is falsy)."""
        cfg, grid = cfg_grid
        m = Module("m0", 100.0, 100.0, power=1.0)
        fp = Floorplan3D(
            stack=cfg,
            placements={"m0": Placement(module=m, x=100.0, y=100.0, die=0)},
        )
        mine = SolverCache()
        solve_floorplan(fp, grid, cache=mine)
        assert mine.misses == 1 and len(mine) == 1


class TestSolveMany:
    def test_matches_sequential_solves(self, cfg_grid):
        cfg, grid = cfg_grid
        solver = SteadyStateSolver(build_stack(cfg, grid))
        rng = np.random.default_rng(4)
        sets = [
            [rng.random(grid.shape) * 1e-3, rng.random(grid.shape) * 1e-3]
            for _ in range(7)
        ]
        batched = solver.solve_many(sets)
        for maps, res in zip(sets, batched):
            ref = solver.solve(maps)
            assert np.allclose(res.nodal, ref.nodal, atol=1e-9)
            for a, b in zip(res.die_maps, ref.die_maps):
                assert np.allclose(a, b, atol=1e-9)

    def test_empty_batch(self, cfg_grid):
        cfg, grid = cfg_grid
        solver = SteadyStateSolver(build_stack(cfg, grid))
        assert solver.solve_many([]) == []


class TestMultiDieDensities:
    def test_normalize_forms(self, cfg_grid):
        cfg, grid = cfg_grid
        d = np.zeros(grid.shape)
        assert normalize_tsv_densities(cfg, grid, None) == {}
        assert set(normalize_tsv_densities(cfg, grid, d)) == {(0, 1)}
        assert set(normalize_tsv_densities(cfg, grid, {(0, 1): d})) == {(0, 1)}
        assert set(normalize_tsv_densities(cfg, grid, [d])) == {(0, 1)}

    def test_normalize_rejects_bad_input(self, cfg_grid):
        cfg, grid = cfg_grid
        with pytest.raises(ValueError):
            normalize_tsv_densities(cfg, grid, np.zeros((3, 3)))
        with pytest.raises(ValueError):
            normalize_tsv_densities(cfg, grid, {(0, 2): np.zeros(grid.shape)})
        with pytest.raises(ValueError):
            # two maps for a two-die stack (only one interface)
            normalize_tsv_densities(
                cfg, grid, [np.zeros(grid.shape), np.zeros(grid.shape)]
            )
        with pytest.raises(TypeError):
            normalize_tsv_densities(cfg, grid, 0.5)

    def test_normalize_rejects_underlength_sequence(self):
        """Regression: a short sequence used to zip-truncate, silently
        leaving upper interfaces TSV-free."""
        cfg = StackConfig.square(1000.0, num_dies=3)
        grid = GridSpec(cfg.outline, 8, 8)
        with pytest.raises(ValueError):
            normalize_tsv_densities(cfg, grid, [np.zeros(grid.shape)])

    def test_three_die_upper_interface_modifies_layers(self):
        cfg = StackConfig.square(1000.0, num_dies=3)
        grid = GridSpec(cfg.outline, 8, 8)
        density = np.zeros(grid.shape)
        density[4, 4] = 1.0
        stack = build_stack(cfg, grid, tsv_density={(1, 2): density})
        bond12 = stack.layers[stack.layer_index("bond12")]
        bulk2 = stack.layers[stack.layer_index("die2_bulk")]
        assert bond12.k_vertical[4, 4] > 50 * bond12.k_vertical[0, 0]
        assert bulk2.k_vertical[4, 4] > bulk2.k_vertical[0, 0]
        # the (0, 1) interface stays pristine
        bond01 = stack.layers[stack.layer_index("bond01")]
        assert bond01.k_vertical[4, 4] == pytest.approx(bond01.k_vertical[0, 0])
        # only (0, 1) TSVs strengthen the package path
        assert stack.r_bottom_map[4, 4] == pytest.approx(stack.r_bottom_map[0, 0])

    def test_solve_floorplan_sees_upper_pair_tsvs(self):
        """Regression: TSVs between dies 1-2 used to be silently dropped."""
        cfg = StackConfig.square(400.0, num_dies=3)
        grid = GridSpec(cfg.outline, 8, 8)
        m = Module("m0", 100.0, 100.0, power=2.0)
        placements = {"m0": Placement(module=m, x=150.0, y=150.0, die=0)}
        fp = Floorplan3D(stack=cfg, placements=placements)
        # a dense island of thermal TSVs between dies 1 and 2 only
        fp.tsvs = [
            TSV(150.0 + 10 * i, 150.0 + 10 * j, 1, 2, kind=TSVKind.THERMAL,
                diameter=20.0, keepout=5.0)
            for i in range(6) for j in range(6)
        ]
        densities = fp.tsv_densities(grid)
        assert set(densities) == {(0, 1), (1, 2)}
        assert densities[(0, 1)].sum() == pytest.approx(0.0)
        assert densities[(1, 2)].sum() > 0.0

        with_tsvs, _ = solve_floorplan(fp, grid, cache=SolverCache())
        bare = fp.copy()
        bare.tsvs = []
        without, _ = solve_floorplan(bare, grid, cache=SolverCache())
        # the TSVs must change the thermal solution; under the old
        # (0, 1)-only code both solves used identical uniform stacks
        assert not np.allclose(with_tsvs.nodal, without.nodal)


class TestFastModelDensities:
    def test_shape_validation_covers_every_die(self):
        model = FastThermalModel(num_dies=2)
        good = np.zeros((8, 8))
        with pytest.raises(ValueError):
            model.estimate([good])  # wrong count
        with pytest.raises(ValueError):
            model.estimate([good, np.zeros((4, 4))])  # mismatched later die
        with pytest.raises(ValueError):
            model.estimate_die(0, [good, np.zeros((4, 4))])
        with pytest.raises(ValueError):
            model.estimate([good, good], tsv_density=np.zeros((4, 4)))

    def test_single_map_matches_legacy_for_two_dies(self):
        model = FastThermalModel(num_dies=2)
        rng = np.random.default_rng(1)
        pms = [rng.random((8, 8)) * 1e-3 for _ in range(2)]
        density = rng.random((8, 8)) * 0.5
        single = model.estimate(pms, tsv_density=density)
        as_pair = model.estimate(pms, tsv_density={(0, 1): density})
        for a, b in zip(single, as_pair):
            assert np.allclose(a, b)

    def test_three_dies_upper_die_not_attenuated_by_lower_interface(self):
        """Regression: the (0, 1) density used to attenuate *every* die."""
        model = FastThermalModel(num_dies=3)
        shape = (8, 8)
        density = np.full(shape, 0.8)
        atten = per_die_attenuation(3, shape, density, model.tsv_beta)
        assert atten[0].min() < 1.0 and atten[1].min() < 1.0
        assert np.all(atten[2] == 1.0)

    def test_per_pair_attenuation_uses_adjacent_interfaces(self):
        shape = (4, 4)
        d01 = np.full(shape, 0.4)
        d12 = np.full(shape, 0.8)
        atten = per_die_attenuation(3, shape, {(0, 1): d01, (1, 2): d12}, 0.5)
        assert np.allclose(atten[0], 1.0 - 0.5 * 0.4)
        # die 1 touches both interfaces; the stronger one wins
        assert np.allclose(atten[1], 1.0 - 0.5 * 0.8)
        assert np.allclose(atten[2], 1.0 - 0.5 * 0.8)

    def test_per_die_sequence(self):
        shape = (4, 4)
        per_die = [np.full(shape, v) for v in (0.0, 0.2, 0.6)]
        atten = per_die_attenuation(3, shape, per_die, 0.5)
        assert np.allclose(atten[0], 1.0)
        assert np.allclose(atten[1], 0.9)
        assert np.allclose(atten[2], 0.7)

    def test_bad_density_count_rejected(self):
        with pytest.raises(ValueError):
            per_die_attenuation(3, (4, 4), [np.zeros((4, 4))] * 4, 0.5)
        with pytest.raises(TypeError):
            per_die_attenuation(3, (4, 4), 1.0, 0.5)

    def test_non_adjacent_pair_rejected(self):
        """Regression: the fast path accepted non-adjacent pairs that the
        detailed solver's normalize_tsv_densities rejects."""
        with pytest.raises(ValueError):
            per_die_attenuation(3, (4, 4), {(0, 2): np.zeros((4, 4))}, 0.5)
