"""Tests for the leakage metrics: Eq. 1 correlation, Eq. 2 stability,
Eq. 3 spatial entropy, and the SVF extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.leakage.entropy import nested_means_classes, spatial_entropy
from repro.leakage.pearson import (
    average_correlation,
    die_correlation,
    local_correlation_map,
    pearson,
)
from repro.leakage.stability import average_stability, most_stable_bins, stability_map
from repro.leakage.svf import similarity_matrix, svf


class TestPearson:
    def test_perfect_correlation(self):
        a = np.arange(10.0)
        assert pearson(a, 2 * a + 3) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        a = np.arange(10.0)
        assert pearson(a, -a) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        assert pearson(np.ones(10), np.arange(10.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.ones(3), np.ones(4))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            pearson(np.ones(1), np.ones(1))

    def test_die_correlation_requires_same_grid(self):
        with pytest.raises(ValueError):
            die_correlation(np.ones((4, 4)), np.ones((8, 8)))

    def test_average_correlation_uses_abs(self):
        p = [np.arange(16.0).reshape(4, 4)] * 2
        t = [np.arange(16.0).reshape(4, 4), -np.arange(16.0).reshape(4, 4)]
        assert average_correlation(p, t) == pytest.approx(1.0)

    def test_average_correlation_count_mismatch(self):
        with pytest.raises(ValueError):
            average_correlation([np.ones((2, 2))], [])

    @given(
        hnp.arrays(np.float64, (24,), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=40)
    def test_bounded(self, a):
        b = np.linspace(0, 1, 24)
        assert -1.0 - 1e-9 <= pearson(a, b) <= 1.0 + 1e-9

    def test_scale_invariance(self):
        rng = np.random.default_rng(0)
        a, b = rng.random(50), rng.random(50)
        assert pearson(a, b) == pytest.approx(pearson(5 * a + 1, 0.1 * b - 7), rel=1e-9)

    def test_local_correlation_map(self):
        rng = np.random.default_rng(1)
        p = rng.random((12, 12))
        out = local_correlation_map(p, p + 0.01 * rng.random((12, 12)), window=3)
        assert out.shape == (12, 12)
        assert out.mean() > 0.9

    def test_local_correlation_map_matches_loop_reference(self):
        """The integral-image version must reproduce the O(n*w^2) loop."""
        from repro.leakage.pearson import local_correlation_map_loop

        rng = np.random.default_rng(7)
        for shape in ((12, 12), (9, 17), (5, 5)):
            for window in (1, 3, 6):
                p = rng.random(shape) * 1e-3
                t = 293.0 + 40.0 * rng.random(shape)  # realistic K offset
                fast = local_correlation_map(p, t, window=window)
                ref = local_correlation_map_loop(p, t, window=window)
                assert np.allclose(fast, ref, atol=1e-8), (shape, window)

    def test_local_correlation_map_high_dynamic_range_matches_loop(self):
        """One huge outlier must not zero out the map's cold windows.

        The moment decomposition cancels catastrophically in windows far
        from the outlier; those fall back to the exact two-pass formula.
        """
        from repro.leakage.pearson import local_correlation_map_loop

        rng = np.random.default_rng(3)
        p = rng.random((12, 12)) * 1e-3
        p[5, 5] = 1e3
        t = 293.0 + 40.0 * rng.random((12, 12)) + 0.05 * p
        fast = local_correlation_map(p, t, window=3)
        ref = local_correlation_map_loop(p, t, window=3)
        assert np.allclose(fast, ref, atol=1e-8)

    def test_local_correlation_map_constant_inputs_are_zero(self):
        p = np.ones((10, 10))
        t = np.full((10, 10), 300.0)
        assert np.all(local_correlation_map(p, t, window=2) == 0.0)

    def test_local_correlation_map_shape_mismatch(self):
        with pytest.raises(ValueError):
            local_correlation_map(np.ones((4, 4)), np.ones((5, 5)))


class TestStability:
    def _samples(self, m=10, shape=(6, 6), coupled=True, seed=0):
        rng = np.random.default_rng(seed)
        ps, ts = [], []
        for _ in range(m):
            p = rng.random(shape)
            ps.append(p)
            ts.append(2.0 * p + 0.01 * rng.random(shape) if coupled else rng.random(shape))
        return ps, ts

    def test_coupled_samples_highly_stable(self):
        ps, ts = self._samples(coupled=True)
        s = stability_map(ps, ts)
        assert average_stability(s) > 0.95

    def test_uncoupled_samples_unstable(self):
        ps, ts = self._samples(coupled=False)
        s = stability_map(ps, ts)
        assert average_stability(s) < 0.5

    def test_constant_bins_get_zero(self):
        ps = [np.ones((3, 3)) for _ in range(5)]
        ts = [np.full((3, 3), float(i)) for i in range(5)]
        s = stability_map(ps, ts)
        assert np.all(s == 0.0)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            stability_map([np.ones((2, 2))], [np.ones((2, 2))])

    def test_count_mismatch(self):
        with pytest.raises(ValueError):
            stability_map([np.ones((2, 2))] * 3, [np.ones((2, 2))] * 2)

    def test_most_stable_bins_ordering(self):
        s = np.zeros((4, 4))
        s[1, 2] = 0.9
        s[3, 0] = -0.8  # |.| counts
        s[0, 0] = 0.5
        bins = most_stable_bins(s, 2)
        assert bins[0] == (1, 2)
        assert bins[1] == (3, 0)

    def test_most_stable_bins_exclusion(self):
        s = np.zeros((3, 3))
        s[0, 0] = 1.0
        s[1, 1] = 0.5
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 0] = True
        assert most_stable_bins(s, 1, exclude=mask) == [(1, 1)]

    def test_exclusion_shape_check(self):
        with pytest.raises(ValueError):
            most_stable_bins(np.zeros((3, 3)), 1, exclude=np.zeros((2, 2), dtype=bool))


class TestNestedMeans:
    def test_constant_map_single_class(self):
        labels = nested_means_classes(np.ones((4, 4)))
        assert np.all(labels == 0)

    def test_bimodal_splits_into_two(self):
        vals = np.array([0.0, 0.0, 0.0, 10.0, 10.0, 10.0])
        labels = nested_means_classes(vals, rtol=0.05, max_depth=1)
        assert len(np.unique(labels)) == 2
        # labels ordered by class mean
        assert labels[0] == 0 and labels[-1] == 1

    def test_max_depth_caps_classes(self):
        rng = np.random.default_rng(0)
        vals = rng.random(256)
        labels = nested_means_classes(vals, rtol=0.0, max_depth=3)
        assert len(np.unique(labels)) <= 8

    def test_labels_partition_by_value(self):
        """Nested means yields contiguous value ranges per class."""
        rng = np.random.default_rng(1)
        vals = rng.random(128)
        labels = nested_means_classes(vals, max_depth=3)
        order = np.argsort(vals)
        sorted_labels = labels[order]
        # ascending class mean => labels non-decreasing over sorted values
        assert np.all(np.diff(sorted_labels) >= 0)


class TestSpatialEntropy:
    def test_uniform_map_zero_entropy(self):
        assert spatial_entropy(np.ones((8, 8))) == pytest.approx(0.0)

    def test_clustered_lower_than_interleaved(self):
        """Claramunt principle: clustering similar values lowers S."""
        half = np.zeros((8, 8))
        half[:, 4:] = 1.0  # two compact clusters
        checker = np.indices((8, 8)).sum(axis=0) % 2.0  # fully interleaved
        assert spatial_entropy(half) < spatial_entropy(checker)

    def test_as_printed_weight_flips_trend(self):
        half = np.zeros((8, 8))
        half[:, 4:] = 1.0
        checker = np.indices((8, 8)).sum(axis=0) % 2.0
        s_half = spatial_entropy(half, weight="as_printed")
        s_checker = spatial_entropy(checker, weight="as_printed")
        assert s_half > s_checker

    def test_unknown_weight_rejected(self):
        with pytest.raises(ValueError):
            spatial_entropy(np.ones((4, 4)), weight="bogus")

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            spatial_entropy(np.ones(16))

    def test_breakdown_consistent(self):
        rng = np.random.default_rng(2)
        pm = rng.random((10, 10))
        bd = spatial_entropy(pm, breakdown=True)
        assert bd.entropy == pytest.approx(sum(bd.contributions))
        assert sum(bd.class_sizes) == 100

    def test_entropy_nonnegative(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            pm = rng.random((8, 8))
            assert spatial_entropy(pm) >= 0.0

    def test_paper_scale(self):
        """Entropies of realistic maps land in the paper's 1-4.5 band."""
        rng = np.random.default_rng(4)
        pm = rng.lognormal(0, 0.8, size=(32, 32))
        s = spatial_entropy(pm)
        assert 0.5 < s < 6.0


class TestSVF:
    def test_identical_traces_full_leakage(self):
        rng = np.random.default_rng(0)
        traces = [rng.random((4, 4)) for _ in range(6)]
        assert svf(traces, traces) == pytest.approx(1.0)

    def test_unrelated_traces_low(self):
        rng = np.random.default_rng(1)
        a = [rng.random((4, 4)) for _ in range(8)]
        b = [rng.random((4, 4)) for _ in range(8)]
        assert svf(a, b) < 0.6

    def test_clamped_at_zero(self):
        a = [np.full((2, 2), float(i)) for i in range(5)]
        b = list(reversed(a))
        assert svf(a, b) >= 0.0

    def test_similarity_matrix_properties(self):
        rng = np.random.default_rng(2)
        traces = [rng.random((3, 3)) for _ in range(5)]
        m = similarity_matrix(traces)
        assert m.shape == (5, 5)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)

    def test_needs_two_snapshots(self):
        with pytest.raises(ValueError):
            similarity_matrix([np.ones((2, 2))])

    def test_count_mismatch(self):
        with pytest.raises(ValueError):
            svf([np.ones((2, 2))] * 3, [np.ones((2, 2))] * 4)
