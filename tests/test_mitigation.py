"""Tests for Gaussian activity sampling and dummy-TSV insertion."""

import numpy as np
import pytest

from repro.layout.die import StackConfig
from repro.layout.floorplan import Floorplan3D
from repro.layout.grid import GridSpec
from repro.layout.module import Module, Placement
from repro.layout.tsv import TSVKind
from repro.mitigation.activity import ActivitySampler, sample_power_maps
from repro.mitigation.dummy_tsv import MitigationConfig, insert_dummy_tsvs


def _hotspot_floorplan():
    """Two dies; die 0 carries a strong localized power imbalance."""
    mods = {
        "hot": Module("hot", 300, 300, power=3.0),
        "warm": Module("warm", 300, 300, power=0.6),
        "cool1": Module("cool1", 300, 300, power=0.2),
        "cool2": Module("cool2", 300, 300, power=0.2),
        "top1": Module("top1", 400, 400, power=1.0),
        "top2": Module("top2", 400, 400, power=0.9),
    }
    placements = {
        "hot": Placement(mods["hot"], 650, 650, die=0),
        "warm": Placement(mods["warm"], 50, 50, die=0),
        "cool1": Placement(mods["cool1"], 50, 650, die=0),
        "cool2": Placement(mods["cool2"], 650, 50, die=0),
        "top1": Placement(mods["top1"], 50, 50, die=1),
        "top2": Placement(mods["top2"], 550, 550, die=1),
    }
    stack = StackConfig.square(1000.0)
    return Floorplan3D(stack, placements)


class TestActivitySampler:
    def test_mean_near_one(self):
        s = ActivitySampler(["a", "b", "c"], sigma=0.1, seed=1)
        samples = [s.sample() for _ in range(300)]
        vals = np.array([[x[n] for n in ("a", "b", "c")] for x in samples])
        assert vals.mean() == pytest.approx(1.0, abs=0.02)
        assert vals.std() == pytest.approx(0.1, abs=0.02)

    def test_nonnegative(self):
        s = ActivitySampler(["a"], sigma=2.0, seed=2)
        assert all(s.sample()["a"] >= 0.0 for _ in range(200))

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            ActivitySampler(["a"], sigma=-0.1)

    def test_zero_sigma_deterministic(self):
        s = ActivitySampler(["a"], sigma=0.0)
        assert s.sample()["a"] == 1.0

    def test_sample_power_maps_shapes(self):
        fp = _hotspot_floorplan()
        grid = GridSpec(fp.stack.outline, 8, 8)
        sets = sample_power_maps(fp, grid, count=5, seed=3)
        assert len(sets) == 5
        assert all(len(s) == 2 for s in sets)
        assert all(m.shape == (8, 8) for s in sets for m in s)

    def test_sample_power_maps_vary(self):
        fp = _hotspot_floorplan()
        grid = GridSpec(fp.stack.outline, 8, 8)
        sets = sample_power_maps(fp, grid, count=3, seed=4)
        assert not np.allclose(sets[0][0], sets[1][0])


class TestDummyTSVInsertion:
    def test_insertion_reduces_correlation(self):
        fp = _hotspot_floorplan()
        cfg = MitigationConfig(samples=20, tsvs_per_round=6, max_rounds=4,
                               grid_nx=12, grid_ny=12, seed=1)
        report = insert_dummy_tsvs(fp, cfg)
        assert report.final_correlation <= report.initial_correlation + 1e-9
        if report.inserted > 0:
            assert report.final_correlation < report.initial_correlation

    def test_inserted_tsvs_are_thermal(self):
        fp = _hotspot_floorplan()
        cfg = MitigationConfig(samples=15, tsvs_per_round=4, max_rounds=2,
                               grid_nx=12, grid_ny=12, seed=2)
        report = insert_dummy_tsvs(fp, cfg)
        for t in report.floorplan.thermal_tsvs:
            assert t.kind == TSVKind.THERMAL
        assert len(report.floorplan.thermal_tsvs) == report.inserted

    def test_original_floorplan_untouched(self):
        fp = _hotspot_floorplan()
        n_before = len(fp.tsvs)
        cfg = MitigationConfig(samples=10, tsvs_per_round=4, max_rounds=1,
                               grid_nx=12, grid_ny=12)
        insert_dummy_tsvs(fp, cfg)
        assert len(fp.tsvs) == n_before

    def test_sweet_spot_stops_insertion(self):
        """The loop must stop before max_rounds when correlation stops
        improving (the paper's stop criterion)."""
        fp = _hotspot_floorplan()
        cfg = MitigationConfig(samples=15, tsvs_per_round=8, max_rounds=12,
                               grid_nx=12, grid_ny=12, seed=3)
        report = insert_dummy_tsvs(fp, cfg)
        # trace is strictly decreasing by construction
        diffs = np.diff(report.correlation_trace)
        assert np.all(diffs < 0) or len(report.correlation_trace) == 1
        assert report.rounds <= 12

    def test_correlation_trace_starts_with_initial(self):
        fp = _hotspot_floorplan()
        cfg = MitigationConfig(samples=10, tsvs_per_round=4, max_rounds=1,
                               grid_nx=12, grid_ny=12)
        report = insert_dummy_tsvs(fp, cfg)
        assert report.initial_correlation == report.correlation_trace[0]
        assert len(report.final_correlations) == 2

    def test_target_die_selection(self):
        fp = _hotspot_floorplan()
        cfg = MitigationConfig(samples=10, tsvs_per_round=4, max_rounds=2,
                               grid_nx=12, grid_ny=12, target_die=0)
        report = insert_dummy_tsvs(fp, cfg)
        assert report.correlation_trace[0] > 0


class TestSpeculativeRounds:
    def test_greedy_single_candidate_still_works(self):
        fp = _hotspot_floorplan()
        cfg = MitigationConfig(samples=15, tsvs_per_round=6, max_rounds=4,
                               grid_nx=12, grid_ny=12, seed=1,
                               candidates_per_round=1)
        report = insert_dummy_tsvs(fp, cfg)
        assert report.final_correlation <= report.initial_correlation + 1e-9
        diffs = np.diff(report.correlation_trace)
        assert np.all(diffs < 0) or len(report.correlation_trace) == 1

    def test_candidate_count_validation(self):
        # validation now happens at construction (the config round-trips
        # over the wire; a bad document must fail before a flow starts)
        with pytest.raises(ValueError):
            MitigationConfig(candidates_per_round=0)
        with pytest.raises(ValueError):
            MitigationConfig(samples=0)

    def test_speculative_rounds_never_reuse_a_bin(self):
        """Accepted groups mark their bins occupied; no analysis bin may
        receive a dummy island twice across rounds."""
        from repro.layout.grid import GridSpec as _GridSpec

        fp = _hotspot_floorplan()
        cfg = MitigationConfig(samples=15, tsvs_per_round=4, max_rounds=6,
                               grid_nx=12, grid_ny=12, seed=3,
                               candidates_per_round=3)
        report = insert_dummy_tsvs(fp, cfg)
        grid = _GridSpec(fp.stack.outline, cfg.grid_nx, cfg.grid_ny)
        per_cell = {}
        for tsv in report.floorplan.thermal_tsvs:
            per_cell.setdefault(grid.cell_of(tsv.x, tsv.y), 0)
            per_cell[grid.cell_of(tsv.x, tsv.y)] += 1
        # every occupied cell holds exactly one island's worth of vias
        assert len(set(per_cell.values())) <= 1

    def test_first_round_speculation_at_least_matches_greedy(self):
        """Round 1 sees identical samples and incumbent in both setups, so
        the best-of-3 pick can only match or beat the greedy top group.
        (Later rounds diverge — different accepted stacks.)"""
        fp = _hotspot_floorplan()
        base = dict(samples=15, tsvs_per_round=6, max_rounds=1,
                    grid_nx=12, grid_ny=12, seed=1)
        greedy = insert_dummy_tsvs(fp, MitigationConfig(**base, candidates_per_round=1))
        spec = insert_dummy_tsvs(fp, MitigationConfig(**base, candidates_per_round=3))
        assert spec.correlation_trace[0] == pytest.approx(greedy.correlation_trace[0])
        if len(greedy.correlation_trace) > 1:
            assert len(spec.correlation_trace) > 1
            assert spec.correlation_trace[1] <= greedy.correlation_trace[1] + 1e-9
