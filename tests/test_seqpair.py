"""Tests for the sequence-pair representation, packing, and moves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.die import StackConfig
from repro.layout.geometry import total_overlap_area
from repro.layout.module import Module, ModuleKind
from repro.floorplan.moves import MOVE_NAMES, apply_random_move
from repro.floorplan.seqpair import DieSequencePair, LayoutState, pack_die


def make_modules(n, rng=None, soft=False):
    rng = rng or np.random.default_rng(0)
    out = {}
    for i in range(n):
        w = float(rng.uniform(5, 30))
        h = float(rng.uniform(5, 30))
        out[f"m{i}"] = Module(
            f"m{i}", w, h,
            kind=ModuleKind.SOFT if soft else ModuleKind.HARD,
            power=float(rng.uniform(0.1, 1.0)),
        )
    return out


class TestPackDie:
    def test_empty(self):
        pos, w, h = pack_die(DieSequencePair([], []), {})
        assert pos == {} and w == 0 and h == 0

    def test_single_block(self):
        seq = DieSequencePair(["a"], ["a"])
        pos, w, h = pack_die(seq, {"a": (10, 20)})
        assert pos["a"] == (0.0, 0.0)
        assert (w, h) == (10, 20)

    def test_two_blocks_left_right(self):
        # a before b in both sequences -> a left of b
        seq = DieSequencePair(["a", "b"], ["a", "b"])
        pos, w, h = pack_die(seq, {"a": (10, 10), "b": (5, 5)})
        assert pos["a"] == (0, 0)
        assert pos["b"][0] == pytest.approx(10.0)
        assert w == pytest.approx(15.0)

    def test_two_blocks_stacked(self):
        # a after b in s1, before b in s2 -> a below b
        seq = DieSequencePair(["b", "a"], ["a", "b"])
        pos, w, h = pack_die(seq, {"a": (10, 10), "b": (5, 5)})
        assert pos["a"] == (0, 0)
        assert pos["b"][1] == pytest.approx(10.0)
        assert h == pytest.approx(15.0)
        assert w == pytest.approx(10.0)

    def test_mismatched_halves_rejected(self):
        with pytest.raises(ValueError):
            DieSequencePair(["a"], ["b"])

    @given(st.integers(min_value=2, max_value=24), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_packing_never_overlaps(self, n, seed):
        """Fundamental sequence-pair invariant: any encoding packs legally."""
        rng = np.random.default_rng(seed)
        sizes = {f"b{i}": (float(rng.uniform(1, 20)), float(rng.uniform(1, 20))) for i in range(n)}
        names = list(sizes)
        s1 = [names[i] for i in rng.permutation(n)]
        s2 = [names[i] for i in rng.permutation(n)]
        pos, w, h = pack_die(DieSequencePair(s1, s2), sizes)
        from repro.layout.geometry import Rect

        rects = [Rect(pos[m][0], pos[m][1], sizes[m][0], sizes[m][1]) for m in names]
        assert total_overlap_area(rects) == pytest.approx(0.0, abs=1e-9)
        # packing extents are tight bounds
        assert max(r.x2 for r in rects) == pytest.approx(w)
        assert max(r.y2 for r in rects) == pytest.approx(h)

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_area_lower_bound(self, n):
        rng = np.random.default_rng(n)
        sizes = {f"b{i}": (float(rng.uniform(1, 10)), float(rng.uniform(1, 10))) for i in range(n)}
        names = list(sizes)
        s1 = [names[i] for i in rng.permutation(n)]
        s2 = [names[i] for i in rng.permutation(n)]
        _, w, h = pack_die(DieSequencePair(s1, s2), sizes)
        total_area = sum(a * b for a, b in sizes.values())
        assert w * h >= total_area - 1e-9


class TestLayoutState:
    def test_initial_state_covers_all_modules(self):
        mods = make_modules(20)
        stack = StackConfig.square(200.0)
        state = LayoutState.initial(mods, stack, np.random.default_rng(0))
        assert set(state.die_of) == set(mods)
        assert sum(len(p) for p in state.pairs) == 20

    def test_power_bias_puts_hot_modules_on_top(self):
        mods = make_modules(30)
        stack = StackConfig.square(500.0)
        state = LayoutState.initial(mods, stack, np.random.default_rng(0), power_biased=True)
        top = stack.top_die
        top_power = sum(mods[n].power for n, d in state.die_of.items() if d == top)
        total = sum(m.power for m in mods.values())
        assert top_power > total / 2

    def test_realize_builds_legal_rects_per_die(self):
        mods = make_modules(15)
        stack = StackConfig.square(1000.0)
        state = LayoutState.initial(mods, stack, np.random.default_rng(1))
        fp = state.realize()
        for die in range(stack.num_dies):
            rects = [p.rect for p in fp.placements_on(die)]
            assert total_overlap_area(rects) == pytest.approx(0.0, abs=1e-9)

    def test_effective_size_soft_reshape(self):
        mods = make_modules(4, soft=True)
        stack = StackConfig.square(100.0)
        state = LayoutState.initial(mods, stack, np.random.default_rng(0))
        name = next(iter(mods))
        state.aspect[name] = 2.0
        w, h = state.effective_size(name)
        assert w / h == pytest.approx(2.0, rel=1e-9)
        assert w * h == pytest.approx(mods[name].area, rel=1e-9)

    def test_effective_size_rotation(self):
        mods = {"a": Module("a", 10, 20)}
        stack = StackConfig.square(100.0, num_dies=1)
        state = LayoutState.initial(mods, stack, np.random.default_rng(0))
        state.rotated["a"] = True
        assert state.effective_size("a") == (20, 10)

    def test_copy_is_independent(self):
        mods = make_modules(6)
        stack = StackConfig.square(100.0)
        state = LayoutState.initial(mods, stack, np.random.default_rng(0))
        clone = state.copy()
        clone.die_of[next(iter(mods))] = 1 - clone.die_of[next(iter(mods))]
        clone.pairs[0].s1.reverse()
        assert state.die_of != clone.die_of or state.pairs[0].s1 != clone.pairs[0].s1


class TestMoves:
    def _state(self, n=12, soft=True):
        mods = make_modules(n, soft=soft)
        stack = StackConfig.square(300.0)
        return LayoutState.initial(mods, stack, np.random.default_rng(3))

    def test_moves_preserve_module_set(self):
        state = self._state()
        rng = np.random.default_rng(7)
        for _ in range(200):
            tag = apply_random_move(state, rng)
            assert tag in MOVE_NAMES
            all_names = sorted(
                name for pair in state.pairs for name in pair.s1
            )
            assert all_names == sorted(state.modules)
            for die, pair in enumerate(state.pairs):
                assert sorted(pair.s1) == sorted(pair.s2)
                for name in pair.s1:
                    assert state.die_of[name] == die

    def test_moves_keep_packing_legal(self):
        state = self._state()
        rng = np.random.default_rng(11)
        from repro.layout.geometry import Rect

        for _ in range(60):
            apply_random_move(state, rng)
            positions, _ = state.pack()
            for die in range(state.stack.num_dies):
                rects = []
                for pair in [state.pairs[die]]:
                    for name in pair.s1:
                        x, y = positions[name]
                        w, h = state.effective_size(name)
                        rects.append(Rect(x, y, w, h))
                assert total_overlap_area(rects) == pytest.approx(0.0, abs=1e-8)

    def test_single_module_stack_moves_dont_crash(self):
        mods = {"only": Module("only", 10, 10)}
        stack = StackConfig.square(50.0)
        state = LayoutState.initial(mods, stack, np.random.default_rng(0))
        rng = np.random.default_rng(0)
        for _ in range(20):
            apply_random_move(state, rng)
        assert sorted(n for p in state.pairs for n in p.s1) == ["only"]
