"""Tests for voltage levels, volume growth, and assignment objectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.die import StackConfig
from repro.layout.floorplan import Floorplan3D
from repro.layout.module import Module, Placement
from repro.power.assignment import AssignmentObjective, assign_voltages
from repro.power.voltages import (
    DEFAULT_LEVELS,
    VoltageLevel,
    delay_scale_for,
    feasible_voltages,
    power_scale_for,
)
from repro.power.volumes import grow_volumes, module_adjacency


class TestVoltageLevels:
    def test_paper_values(self):
        """The 90 nm scaling triplets are used verbatim (Sec. 7)."""
        assert power_scale_for(0.8) == pytest.approx(0.817)
        assert delay_scale_for(0.8) == pytest.approx(1.56)
        assert power_scale_for(1.0) == 1.0
        assert delay_scale_for(1.0) == 1.0
        assert power_scale_for(1.2) == pytest.approx(1.496)
        assert delay_scale_for(1.2) == pytest.approx(0.83)

    def test_interpolation_monotone(self):
        vs = np.linspace(0.8, 1.2, 9)
        ps = [power_scale_for(float(v)) for v in vs]
        ds = [delay_scale_for(float(v)) for v in vs]
        assert all(a <= b + 1e-12 for a, b in zip(ps, ps[1:]))
        assert all(a >= b - 1e-12 for a, b in zip(ds, ds[1:]))

    def test_level_validation(self):
        with pytest.raises(ValueError):
            VoltageLevel(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            VoltageLevel(1.0, -1.0, 1.0)

    def test_feasible_voltages_no_slack(self):
        """Without slack only the >= 1.0 V options remain."""
        feas = feasible_voltages(1.0)
        volts = [lv.volts for lv in feas]
        assert 0.8 not in volts
        assert 1.0 in volts and 1.2 in volts

    def test_feasible_voltages_with_slack(self):
        feas = feasible_voltages(1.6)
        assert 0.8 in [lv.volts for lv in feas]

    @given(st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=30)
    def test_reference_always_feasible(self, slack):
        assert any(lv.volts == 1.0 for lv in feasible_voltages(slack))


def _grid_floorplan(nx=3, ny=3, sep=0.0, power=None):
    """A grid of touching 100x100 modules on die 0 (plus one on die 1)."""
    mods = {}
    placements = {}
    rng = np.random.default_rng(0)
    for j in range(ny):
        for i in range(nx):
            name = f"m{j}{i}"
            p = power if power is not None else float(rng.uniform(0.1, 1.0))
            mods[name] = Module(name, 100, 100, power=p, intrinsic_delay=0.2)
            placements[name] = Placement(mods[name], i * (100 + sep), j * (100 + sep), die=0)
    mods["top"] = Module("top", 100, 100, power=0.5, intrinsic_delay=0.2)
    placements["top"] = Placement(mods["top"], 0, 0, die=1)
    stack = StackConfig.square(1000.0)
    return Floorplan3D(stack, placements)


class TestAdjacency:
    def test_touching_modules_adjacent(self):
        fp = _grid_floorplan()
        adj = module_adjacency(fp)
        assert "m01" in adj["m00"]
        assert "m10" in adj["m00"]
        assert "m11" not in adj["m00"] or True  # diagonal contact allowed via corner

    def test_separated_modules_not_adjacent(self):
        fp = _grid_floorplan(sep=50.0)
        adj = module_adjacency(fp)
        assert "m01" not in adj["m00"]

    def test_cross_die_overlap_adjacent(self):
        fp = _grid_floorplan()
        adj = module_adjacency(fp)
        # "top" overlaps m00's footprint on the adjacent die
        assert "m00" in adj["top"]
        assert "top" in adj["m00"]


class TestGrowVolumes:
    def test_singletons_always_present(self):
        fp = _grid_floorplan()
        inflation = {n: 1.0 for n in fp.placements}
        vols = grow_volumes(fp, inflation)
        singles = [v for v in vols if v.size == 1]
        assert len(singles) == len(fp.placements)

    def test_growth_with_slack(self):
        fp = _grid_floorplan()
        inflation = {n: 2.0 for n in fp.placements}
        vols = grow_volumes(fp, inflation)
        assert any(v.size > 4 for v in vols)
        # with generous slack all three levels stay feasible
        big = max(vols, key=lambda v: v.size)
        assert len(big.feasible) == 3

    def test_feasible_intersection_shrinks(self):
        fp = _grid_floorplan()
        inflation = {n: (2.0 if n != "m11" else 1.0) for n in fp.placements}
        vols = grow_volumes(fp, inflation)
        for v in vols:
            if "m11" in v.members:
                assert all(lv.volts >= 1.0 for lv in v.feasible)

    def test_max_size_respected(self):
        fp = _grid_floorplan()
        inflation = {n: 2.0 for n in fp.placements}
        vols = grow_volumes(fp, inflation, max_volume_size=3)
        assert max(v.size for v in vols) <= 3


class TestAssignment:
    def test_all_modules_covered(self):
        fp = _grid_floorplan()
        inflation = {n: 1.6 for n in fp.placements}
        for objective in (AssignmentObjective.POWER_AWARE, AssignmentObjective.TSC_AWARE):
            res = assign_voltages(fp, inflation, objective=objective)
            assert set(res.voltages) == set(fp.placements)
            covered = set()
            for v in res.volumes:
                assert not (covered & v.members), "volumes must be disjoint"
                covered |= v.members
            assert covered == set(fp.placements)

    def test_power_aware_reduces_power(self):
        fp = _grid_floorplan()
        inflation = {n: 1.6 for n in fp.placements}
        res = assign_voltages(fp, inflation, objective=AssignmentObjective.POWER_AWARE)
        assert res.power_w(fp) < fp.total_power() + 1e-12
        assert any(v == 0.8 for v in res.voltages.values())

    def test_no_slack_no_undervolting(self):
        fp = _grid_floorplan()
        inflation = {n: 1.0 for n in fp.placements}
        res = assign_voltages(fp, inflation, objective=AssignmentObjective.POWER_AWARE)
        assert all(v >= 1.0 for v in res.voltages.values())

    def test_tsc_aware_flattens_density(self):
        """TSC assignment must reduce the spread of power densities."""
        rng = np.random.default_rng(3)
        mods, placements = {}, {}
        for j in range(4):
            for i in range(4):
                name = f"m{j}{i}"
                p = float(rng.choice([0.1, 0.9]))
                mods[name] = Module(name, 100, 100, power=p, intrinsic_delay=0.2)
                placements[name] = Placement(mods[name], i * 100, j * 100, die=0)
        stack = StackConfig.square(1000.0)
        fp = Floorplan3D(stack, placements)
        inflation = {n: 1.6 for n in placements}
        res = assign_voltages(fp, inflation, objective=AssignmentObjective.TSC_AWARE)
        from repro.power.voltages import power_scale_for as ps

        before = np.array([m.power / m.area for m in mods.values()])
        after = np.array(
            [mods[n].power * ps(res.voltages[n]) / mods[n].area for n in mods]
        )
        assert after.std() / after.mean() <= before.std() / before.mean() + 1e-9

    def test_tsc_aware_more_volumes_than_pa(self):
        """The paper's Table 2: TSC needs notably more voltage volumes."""
        fp = _grid_floorplan(nx=4, ny=4)
        inflation = {n: 1.6 for n in fp.placements}
        pa = assign_voltages(fp, inflation, objective=AssignmentObjective.POWER_AWARE)
        tsc = assign_voltages(fp, inflation, objective=AssignmentObjective.TSC_AWARE)
        assert tsc.num_volumes >= pa.num_volumes

    def test_unknown_objective_rejected(self):
        fp = _grid_floorplan()
        with pytest.raises(ValueError):
            assign_voltages(fp, {}, objective="fastest")
