"""The factorization-backend layer: selection policy, cross-backend
oracles, persistence format v2, and the capability queries that replaced
type sniffing in the solver layer.

Every backend is validated against the superlu oracle (bit-compatible
extraction of the pre-refactor solver): direct backends to 1e-10
relative, multigrid to its stated iterative tolerance.  cholmod's
*native* path needs scikit-sparse (skipped when absent — CI's optional
leg covers it); its persisted-factor path is dependency-free and is
exercised here with synthesized Cholesky payloads.
"""

import numpy as np
import pytest

from repro.core import faults
from repro.core.faults import DegradationWarning, injected
from repro.layout.die import StackConfig
from repro.layout.grid import GridSpec
from repro.thermal.backends import (
    BACKEND_NAMES,
    BackendUnavailable,
    get_backend,
    multigrid_threshold,
    resolve_backend,
)
from repro.thermal.backends.cholmod import (
    PersistedCholeskyFactorization,
    sksparse_available,
)
from repro.thermal.backends.compiled import numba_available
from repro.thermal.backends.multigrid import (
    MULTIGRID_TOLERANCE,
    MultigridFactorization,
)
from repro.thermal.backends.superlu import PersistedSuperLUFactorization
from repro.thermal.stack import build_stack, normalize_tsv_densities
from repro.thermal.steady_state import (
    SolverCache,
    SteadyStateSolver,
    WoodburySolver,
    woodbury_crossover_rank,
)
from repro.thermal.transient import TransientSolver

#: direct backends must match the superlu oracle to this relative error
ORACLE_RTOL = 1e-10


def _stack(num_dies=2, grid_n=10, side=1500.0, tsv=False):
    cfg = StackConfig.square(side, num_dies=num_dies)
    grid = GridSpec(cfg.outline, grid_n, grid_n)
    tsv_density = None
    if tsv:
        density = np.zeros(grid.shape)
        density[2:5, 3:7] = 0.5
        tsv_density = {(0, 1): density}
    return cfg, grid, build_stack(cfg, grid, tsv_density=tsv_density)


def _power_sets(grid, num_dies, count=3, seed=0):
    rng = np.random.default_rng(seed)
    return [
        [rng.random(grid.shape) * 0.02 for _ in range(num_dies)]
        for _ in range(count)
    ]


class TestRegistryAndSelection:
    def test_registry_names(self):
        assert BACKEND_NAMES == (
            "superlu", "cholmod", "compiled_triangular", "multigrid"
        )
        for name in BACKEND_NAMES:
            assert get_backend(name) is get_backend(name)  # singletons

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ValueError, match="unknown thermal backend"):
            get_backend("pardiso")
        with pytest.raises(ValueError, match="unknown thermal backend"):
            resolve_backend("pardiso")

    def test_explicit_instance_is_trusted(self):
        mg = get_backend("multigrid")
        assert resolve_backend(mg) is mg

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_THERMAL_BACKEND", "compiled_triangular")
        assert resolve_backend().name == "compiled_triangular"
        monkeypatch.setenv("REPRO_THERMAL_BACKEND", "AUTO")
        assert resolve_backend().name in ("superlu", "cholmod")

    def test_auto_prefers_multigrid_above_threshold(self):
        small = resolve_backend(cells_per_layer=multigrid_threshold())
        assert small.name != "multigrid"
        big = resolve_backend(cells_per_layer=multigrid_threshold() + 1)
        assert big.name == "multigrid"

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MULTIGRID_THRESHOLD", "100")
        assert multigrid_threshold() == 100
        assert resolve_backend(cells_per_layer=101).name == "multigrid"
        monkeypatch.setenv("REPRO_MULTIGRID_THRESHOLD", "lots")
        with pytest.raises(ValueError, match="REPRO_MULTIGRID_THRESHOLD"):
            multigrid_threshold()

    def test_auto_never_picks_compiled(self):
        # compiled_triangular changes low-order bits vs the oracle, so
        # engaging it must stay an explicit decision
        for cells in (64, 4096):
            assert resolve_backend(cells_per_layer=cells).name in (
                "superlu", "cholmod"
            )

    def test_unavailable_request_degrades_to_superlu(self):
        before = faults.snapshot_degradations()
        with injected("backend.cholmod.unavailable=fail"):
            with pytest.warns(DegradationWarning, match="backend.fallback.cholmod"):
                chosen = resolve_backend("cholmod")
        assert chosen.name == "superlu"
        assert faults.degradations_since(before)["backend.fallback.cholmod"] == 1

    def test_forced_unavailable_multigrid_falls_back(self):
        with injected("backend.multigrid.unavailable=fail"):
            # auto at a multigrid-sized grid quietly takes the next tier
            auto = resolve_backend(cells_per_layer=multigrid_threshold() + 1)
            assert auto.name in ("superlu", "cholmod")
            with pytest.warns(DegradationWarning):
                explicit = resolve_backend("multigrid")
            assert explicit.name == "superlu"


class TestSuperLUBitCompatibility:
    def test_default_backend_is_the_old_solver_exactly(self):
        """The refactor must not move a single bit on the default path."""
        import scipy.sparse.linalg as spla

        cfg, grid, stack = _stack()
        solver = SteadyStateSolver(stack, backend="superlu")
        lu = spla.splu(solver.network.conductance.tocsc())
        sets = _power_sets(grid, 2)
        got = solver.solve(sets[0])
        q = solver.network.power_vector(list(sets[0])) + (
            solver.network.boundary * stack.ambient
        )
        assert np.array_equal(got.nodal, lu.solve(q))

    def test_lu_alias_still_solves(self):
        _, grid, stack = _stack()
        solver = SteadyStateSolver(stack)
        e = np.zeros(solver.network.num_nodes)
        e[7] = 1.0
        np.testing.assert_allclose(
            solver._lu.solve(e), solver.factorization.solve(e), rtol=0
        )


@pytest.mark.parametrize("num_dies", [2, 3])
class TestCompiledBackendOracle:
    def _oracle_pair(self, num_dies, **stack_kwargs):
        cfg, grid, stack = _stack(num_dies=num_dies, tsv=True, **stack_kwargs)
        oracle = SteadyStateSolver(stack, backend="superlu")
        compiled = SteadyStateSolver(stack, backend="compiled_triangular")
        return grid, stack, oracle, compiled

    def test_fresh_factorization_matches_oracle(self, num_dies):
        grid, _, oracle, compiled = self._oracle_pair(num_dies)
        assert compiled.factorization.backend_name == "compiled_triangular"
        assert not compiled.factorization.is_persisted
        sets = _power_sets(grid, num_dies)
        want = oracle.solve(sets[0])
        got = compiled.solve(sets[0])
        np.testing.assert_allclose(got.nodal, want.nodal, rtol=ORACLE_RTOL)
        for a, b in zip(compiled.solve_many(sets), oracle.solve_many(sets)):
            np.testing.assert_allclose(a.nodal, b.nodal, rtol=ORACLE_RTOL)

    def test_persisted_roundtrip_matches_oracle(self, num_dies):
        grid, stack, oracle, compiled = self._oracle_pair(num_dies)
        backend = get_backend("compiled_triangular")
        payload = backend.payload_from(compiled.factorization)
        fact = backend.factorization_from_payload(payload)
        assert fact.is_persisted
        rebuilt = SteadyStateSolver(stack, lu=fact)
        assert rebuilt.backend.name == "compiled_triangular"
        sets = _power_sets(grid, num_dies)
        for a, b in zip(rebuilt.solve_many(sets), oracle.solve_many(sets)):
            np.testing.assert_allclose(a.nodal, b.nodal, rtol=ORACLE_RTOL)

    def test_woodbury_rides_compiled_base(self, num_dies):
        cfg = StackConfig.square(2000.0, num_dies=num_dies)
        grid = GridSpec(cfg.outline, 12, 12)
        base_stack = build_stack(cfg, grid)
        density = np.zeros(grid.shape)
        density[3:5, 4:7] = 0.5
        pert_stack = build_stack(cfg, grid, tsv_density={(0, 1): density})
        sets = _power_sets(grid, num_dies)

        base = SteadyStateSolver(base_stack, backend="compiled_triangular")
        wood = WoodburySolver(base, pert_stack)
        assert wood.is_low_rank, wood.fallback_reason
        oracle = SteadyStateSolver(pert_stack, backend="superlu")
        for a, b in zip(wood.solve_many(sets), oracle.solve_many(sets)):
            np.testing.assert_allclose(a.nodal, b.nodal, rtol=1e-8)


class TestCompiledKernels:
    def test_wrapped_kernel_matches_spsolve_triangular(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_KERNEL", "wrapped")
        _, grid, stack = _stack(grid_n=8)
        compiled = SteadyStateSolver(stack, backend="compiled_triangular")
        backend = get_backend("compiled_triangular")
        fact = backend.factorization_from_payload(
            backend.payload_from(compiled.factorization)
        )
        assert fact.kernel_name == "wrapped"
        # the slow oracle for the same factors
        slow = PersistedSuperLUFactorization(
            fact._L, fact._U, fact._perm_r, fact._perm_c
        )
        rng = np.random.default_rng(3)
        b = rng.random((fact._L.shape[0], 4))
        np.testing.assert_allclose(
            fact.solve(b), slow.solve(b.copy()), rtol=1e-11
        )
        one = rng.random(fact._L.shape[0])
        np.testing.assert_allclose(
            fact.solve(one), slow.solve(one.copy()), rtol=1e-11
        )

    def test_forced_numba_without_numba_degrades(self, monkeypatch):
        if numba_available():  # pragma: no cover - container has no numba
            pytest.skip("numba present; the degrade path cannot fire")
        monkeypatch.setenv("REPRO_COMPILED_KERNEL", "numba")
        before = faults.snapshot_degradations()
        _, grid, stack = _stack(grid_n=8)
        backend = get_backend("compiled_triangular")
        compiled = SteadyStateSolver(stack, backend=backend)
        with pytest.warns(DegradationWarning, match="kernel_fallback"):
            fact = backend.factorization_from_payload(
                backend.payload_from(compiled.factorization)
            )
        assert fact.kernel_name == "wrapped"
        assert (
            faults.degradations_since(before)["backend.compiled.kernel_fallback"]
            == 1
        )

    def test_bad_kernel_choice_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_KERNEL", "fortran")
        from repro.thermal.backends.compiled import pick_kernel_name

        with pytest.raises(ValueError, match="REPRO_COMPILED_KERNEL"):
            pick_kernel_name()


def _synth_cholesky(conductance):
    """A (permuted) Cholesky factor computed without scikit-sparse.

    Dense is fine at test sizes; the permutation is deliberately
    non-trivial so the ``x[p] = L⁻ᵀ L⁻¹ b[p]`` convention is exercised.
    """
    import scipy.sparse as sp

    n = conductance.shape[0]
    perm = np.random.default_rng(5).permutation(n)
    dense = conductance.toarray()[np.ix_(perm, perm)]
    L = np.linalg.cholesky(dense)
    L[np.abs(L) < 1e-14] = 0.0
    return sp.csc_matrix(L), perm


class TestPersistedCholesky:
    """The cholmod persisted path is dependency-free: rebuilt factors
    solve through the compiled substitution kernels, so the container
    (which has no scikit-sparse) still covers it end to end."""

    @pytest.mark.parametrize("num_dies", [2, 3])
    def test_synthesized_factor_matches_oracle(self, num_dies):
        _, grid, stack = _stack(num_dies=num_dies, grid_n=8, tsv=True)
        oracle = SteadyStateSolver(stack, backend="superlu")
        L, perm = _synth_cholesky(oracle.network.conductance)
        fact = PersistedCholeskyFactorization(L, perm)
        assert fact.is_persisted and fact.needs_self_check
        solver = SteadyStateSolver(stack, lu=fact)
        assert solver.backend.name == "cholmod"
        sets = _power_sets(grid, num_dies)
        for a, b in zip(solver.solve_many(sets), oracle.solve_many(sets)):
            np.testing.assert_allclose(a.nodal, b.nodal, rtol=ORACLE_RTOL)

    def test_payload_roundtrip(self):
        _, grid, stack = _stack(grid_n=8)
        oracle = SteadyStateSolver(stack, backend="superlu")
        L, perm = _synth_cholesky(oracle.network.conductance)
        backend = get_backend("cholmod")
        payload = backend.payload_from(PersistedCholeskyFactorization(L, perm))
        assert str(payload["kind"]) == "cholesky"
        assert backend.accepts_payload(payload)
        assert not get_backend("superlu").accepts_payload(payload)
        fact = backend.factorization_from_payload(payload)
        b = np.random.default_rng(1).random(L.shape[0])
        np.testing.assert_allclose(
            fact.solve(b), oracle.factorization.solve(b), rtol=ORACLE_RTOL
        )

    def test_self_check_rejects_wrong_factors(self):
        from repro.thermal.steady_state import _self_check_ok

        _, grid, stack = _stack(grid_n=8)
        solver = SteadyStateSolver(stack, backend="superlu")
        L, perm = _synth_cholesky(solver.network.conductance)
        good = PersistedCholeskyFactorization(L, perm)
        assert _self_check_ok(good, solver.network)
        bad = PersistedCholeskyFactorization(L * 1.5, perm)
        with pytest.warns(DegradationWarning, match="self_check_failed"):
            assert not _self_check_ok(bad, solver.network)

    def test_native_cholmod_matches_oracle(self):
        if not sksparse_available():
            pytest.skip("scikit-sparse not installed (optional CI leg)")
        _, grid, stack = _stack(num_dies=3, tsv=True)
        oracle = SteadyStateSolver(stack, backend="superlu")
        solver = SteadyStateSolver(stack, backend="cholmod")
        assert solver.factorization.backend_name == "cholmod"
        assert not solver.factorization.is_persisted
        sets = _power_sets(grid, 3)
        for a, b in zip(solver.solve_many(sets), oracle.solve_many(sets)):
            np.testing.assert_allclose(a.nodal, b.nodal, rtol=ORACLE_RTOL)
        assert solver.factorization.supports_woodbury_base


class TestMultigridOracle:
    def test_small_size_matches_direct_to_stated_tolerance(self):
        cfg, grid, stack = _stack(grid_n=16, side=2000.0, tsv=True)
        direct = SteadyStateSolver(stack, backend="superlu")
        mg = SteadyStateSolver(stack, backend="multigrid")
        fact = mg.factorization
        assert isinstance(fact, MultigridFactorization)
        assert not fact.supports_woodbury_base and not fact.is_persisted
        sets = _power_sets(grid, 2)
        for a, b in zip(mg.solve_many(sets), direct.solve_many(sets)):
            # iterative answer: verify the true residual meets the
            # stated tolerance, and the temperatures track the oracle
            q = mg.network.power_vector(list(sets[0]))  # shape check only
            np.testing.assert_allclose(a.nodal, b.nodal, rtol=1e-7)
        q = mg.network.power_vector(list(sets[0])) + (
            mg.network.boundary * stack.ambient
        )
        x = fact.solve(q)
        resid = np.linalg.norm(mg.network.conductance @ x - q)
        assert resid <= MULTIGRID_TOLERANCE * np.linalg.norm(q) * 10

    def test_three_die_128_grid_converges(self):
        """The acceptance-size solve: 3 dies at 128x128 (N≈230k), where
        a direct factorization takes tens of seconds."""
        cfg = StackConfig.square(4000.0, num_dies=3)
        grid = GridSpec(cfg.outline, 128, 128)
        stack = build_stack(cfg, grid)
        solver = SteadyStateSolver(stack, backend="multigrid")
        rng = np.random.default_rng(2)
        pm = [rng.random(grid.shape) * 0.01 for _ in range(3)]
        result = solver.solve(pm)
        fact = solver.factorization
        assert fact.last_iterations < fact.maxiter
        q = solver.network.power_vector(pm) + (
            solver.network.boundary * stack.ambient
        )
        resid = np.linalg.norm(solver.network.conductance @ result.nodal - q)
        assert resid <= MULTIGRID_TOLERANCE * np.linalg.norm(q) * 10
        assert result.peak > stack.ambient

    def test_auto_selects_multigrid_past_threshold(self):
        cfg = StackConfig.square(4000.0)
        grid = GridSpec(cfg.outline, 80, 80)  # 6400 > 4096 cells/layer
        assert resolve_backend(cells_per_layer=grid.nx * grid.ny).name == (
            "multigrid"
        )

    def test_woodbury_refuses_multigrid_base_and_stays_correct(self):
        cfg = StackConfig.square(2000.0)
        grid = GridSpec(cfg.outline, 16, 16)
        base_stack = build_stack(cfg, grid)
        density = np.zeros(grid.shape)
        density[4:6, 5:8] = 0.5
        pert = build_stack(cfg, grid, tsv_density={(0, 1): density})
        base = SteadyStateSolver(base_stack, backend="multigrid")
        before = faults.snapshot_degradations()
        wood = WoodburySolver(base, pert)
        assert wood.fallback_reason == "unsupported-base"
        assert (
            faults.degradations_since(before)[
                "woodbury.fallback.unsupported-base"
            ]
            == 1
        )
        pm = _power_sets(grid, 2)[0]
        oracle = SteadyStateSolver(pert, backend="superlu")
        got = wood.solve(pm)
        # fallback factorizes fresh on the base's backend (multigrid)
        np.testing.assert_allclose(
            got.nodal, oracle.solve(pm).nodal, rtol=1e-7
        )

    def test_factor_guards(self):
        backend = get_backend("multigrid")
        _, grid, stack = _stack(grid_n=8)
        solver = SteadyStateSolver(stack)  # just for the matrix
        G = solver.network.conductance
        with pytest.raises(BackendUnavailable, match="grid_shape"):
            backend.factor(G)
        with pytest.raises(BackendUnavailable, match="persist"):
            backend.factor(
                G, reconstructable=True, hints=solver.network.factor_hints()
            )


class TestWoodburyCrossoverHint:
    def _pair(self):
        cfg = StackConfig.square(2000.0)
        grid = GridSpec(cfg.outline, 16, 16)
        base_stack = build_stack(cfg, grid)
        density = np.zeros(grid.shape)
        density[4:6, 5:7] = 0.5
        pert = build_stack(cfg, grid, tsv_density={(0, 1): density})
        return grid, base_stack, pert

    def test_hint_scales_the_crossover(self):
        grid, base_stack, pert = self._pair()
        base = SteadyStateSolver(base_stack)
        n = base.network.num_nodes
        native = WoodburySolver(base, pert)
        assert native.crossover_rank == woodbury_crossover_rank(n)

        # a persisted superlu base carries the measured ~15x hint and
        # deflates the crossover by exactly that factor
        backend = get_backend("superlu")
        cache_fact = backend.factorization_from_payload(
            backend.payload_from(
                SteadyStateSolver(base_stack, reconstructable=True).factorization
            )
        )
        assert cache_fact.per_rhs_cost_hint == 15.0
        persisted_base = SteadyStateSolver(base_stack, lu=cache_fact)
        deflated = WoodburySolver(persisted_base, pert)
        assert deflated.crossover_rank == max(
            1, int(woodbury_crossover_rank(n) / 15.0)
        )

    def test_cheap_hint_stretches_the_crossover(self):
        grid, base_stack, pert = self._pair()
        base = SteadyStateSolver(base_stack)
        base.factorization.per_rhs_cost_hint = 0.5  # e.g. a cholmod base
        wood = WoodburySolver(base, pert)
        n = base.network.num_nodes
        assert wood.crossover_rank == int(woodbury_crossover_rank(n) / 0.5)

    def test_explicit_crossover_still_wins(self):
        grid, base_stack, pert = self._pair()
        base = SteadyStateSolver(base_stack)
        base.factorization.per_rhs_cost_hint = 15.0
        wood = WoodburySolver(base, pert, crossover_rank=7)
        assert wood.crossover_rank == 7


class TestCacheBackendKeySpace:
    def test_backend_in_key_separates_entries(self):
        cfg, grid, _ = _stack(grid_n=8)
        cache = SolverCache(maxsize=4)
        a = cache.solver(cfg, grid)
        cache.backend = "compiled_triangular"
        b = cache.solver(cfg, grid)
        assert a is not b
        assert cache.misses == 2 and len(cache) == 2
        cache.backend = None
        assert cache.solver(cfg, grid) is a
        assert cache.hits == 1

    def test_legacy_v1_files_migrate_in_place(self, tmp_path):
        """A disk cache written by the pre-backend revision is adopted:
        the v1 ``lu-*.npz`` file is upgraded to ``fact-*.npz`` and its
        factors are reused (no refactorization)."""
        import scipy.sparse.linalg as spla

        cfg, grid, stack = _stack(grid_n=8)
        cache = SolverCache(disk_dir=tmp_path, backend="superlu")
        densities = normalize_tsv_densities(cfg, grid, None)
        key = cache._key(cfg, grid, densities, {}, "superlu")
        legacy_path = tmp_path / f"lu-{cache._digest_key(key[:-1])}.npz"

        # write the file exactly as the old _save_lu did
        from repro.thermal.steady_state import _conductance_digest

        solver = SteadyStateSolver(stack, reconstructable=True)
        lu = solver.factorization._lu
        L, U = lu.L.tocsc(), lu.U.tocsc()
        np.savez(
            legacy_path.with_suffix(""),
            L_data=L.data, L_indices=L.indices, L_indptr=L.indptr,
            U_data=U.data, U_indices=U.indices, U_indptr=U.indptr,
            perm_r=lu.perm_r, perm_c=lu.perm_c,
            shape=np.asarray(L.shape, dtype=np.int64),
            conductance_digest=np.array(
                _conductance_digest(solver.network.conductance)
            ),
        )
        assert legacy_path.exists()

        loaded = cache.solver(cfg, grid)
        assert cache.disk_hits == 1
        assert loaded.factorization.is_persisted
        assert not legacy_path.exists()  # upgraded in place
        new_files = list(tmp_path.glob("fact-*.npz"))
        assert len(new_files) == 1
        with np.load(new_files[0]) as z:
            assert int(z["format"]) == 2
            assert str(z["kind"]) == "lu"

        pm = _power_sets(grid, 2)[0]
        native = spla.splu(solver.network.conductance.tocsc())
        q = solver.network.power_vector(list(pm)) + (
            solver.network.boundary * stack.ambient
        )
        np.testing.assert_allclose(
            loaded.solve(pm).nodal, native.solve(q), rtol=1e-9
        )

    def test_compiled_backend_disk_roundtrip(self, tmp_path):
        cfg, grid, stack = _stack(grid_n=8)
        warm = SolverCache(disk_dir=tmp_path, backend="compiled_triangular")
        warm_solver = warm.solver(cfg, grid)
        assert not warm_solver.factorization.is_persisted
        cold = SolverCache(disk_dir=tmp_path, backend="compiled_triangular")
        loaded = cold.solver(cfg, grid)
        assert cold.disk_hits == 1
        assert loaded.factorization.backend_name == "compiled_triangular"
        assert loaded.factorization.is_persisted
        pm = _power_sets(grid, 2)[0]
        np.testing.assert_allclose(
            loaded.solve(pm).nodal, warm_solver.solve(pm).nodal,
            rtol=ORACLE_RTOL,
        )

    def test_non_persistable_backend_skips_disk(self, tmp_path):
        cfg = StackConfig.square(2000.0)
        grid = GridSpec(cfg.outline, 16, 16)
        cache = SolverCache(disk_dir=tmp_path, backend="multigrid")
        solver = cache.solver(cfg, grid)
        assert solver.backend.name == "multigrid"
        assert not list(tmp_path.iterdir())  # no files, no crash
        assert cache.disk_hits == 0


class TestDropPersistedCapability:
    """The eviction policy reads ``is_persisted``, not factor types —
    the regression the old type sniff would have caused: a cholmod-backed
    native entry evicted as if it were a disk-loaded LU."""

    def _entry(self, fact):
        _, grid, stack = _stack(grid_n=8)
        cache = SolverCache()
        solver = SteadyStateSolver(stack, lu=fact)
        cache._entries[("probe", fact.backend_name)] = solver
        return cache

    def test_native_cholesky_style_entry_survives(self):
        class NativeCholeskyStub:
            backend_name = "cholmod"
            is_persisted = False
            per_rhs_cost_hint = 0.2
            supports_woodbury_base = True

            def solve(self, b):  # pragma: no cover - never called here
                return b

            def solve_many(self, b):  # pragma: no cover
                return b

        cache = self._entry(NativeCholeskyStub())
        assert cache.drop_persisted_solvers() == 0
        assert len(cache) == 1

    def test_persisted_cholesky_entry_is_evicted(self):
        _, grid, stack = _stack(grid_n=8)
        probe = SteadyStateSolver(stack, backend="superlu")
        L, perm = _synth_cholesky(probe.network.conductance)
        cache = self._entry(PersistedCholeskyFactorization(L, perm))
        assert cache.drop_persisted_solvers() == 1
        assert len(cache) == 0

    def test_persisted_superlu_entry_is_still_evicted(self, tmp_path):
        cfg, grid, _ = _stack(grid_n=8)
        SolverCache(disk_dir=tmp_path).solver(cfg, grid)
        cache = SolverCache(disk_dir=tmp_path)
        cache.solver(cfg, grid)
        assert cache.drop_persisted_solvers() == 1


class TestTransientBackend:
    def test_compiled_backend_matches_default(self):
        _, grid, stack = _stack(grid_n=8)
        pm = [np.full(grid.shape, 0.002) for _ in range(2)]

        def power_at(_t):
            return pm

        ref = TransientSolver(stack).run(power_at, duration=0.2, dt=0.05)
        alt = TransientSolver(stack, backend="compiled_triangular").run(
            power_at, duration=0.2, dt=0.05
        )
        np.testing.assert_allclose(
            alt.die_means, ref.die_means, rtol=1e-9
        )
        np.testing.assert_allclose(alt.die_peaks, ref.die_peaks, rtol=1e-9)

    def test_backend_attribute_resolves(self):
        _, grid, stack = _stack(grid_n=8)
        solver = TransientSolver(stack, backend="compiled_triangular")
        assert solver.backend.name == "compiled_triangular"
