"""Tests for the filesystem-coordinated distributed work queue.

Covers the coordination guarantees multi-host sweeps rely on:

* exactly one of N racing workers wins a claim (O_EXCL arbitration);
* a killed worker's in-flight job is reclaimed — after its lease
  expires — and completed by a surviving worker;
* a job two workers both completed lands exactly once after
  ``merge_shards`` (key-level dedup);
* a 2-worker queue sweep produces a merged store bit-identical in keys
  and metrics to the single-host ``run_batch`` result.
"""

import itertools
import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.core.queue import Lease, WorkQueue, run_worker
from repro.core.results import FlowMetrics
from repro.core.store import ResultsStore
from repro.exploration.study import BatchJob, run_batch


def _metrics(tag=1.0):
    return FlowMetrics(
        benchmark="n100",
        mode="power_aware",
        spatial_entropy_s1=0.8,
        correlation_r1=float(tag),
        spatial_entropy_s2=0.7,
        correlation_r2=0.4,
        power_w=8.0,
        critical_delay_ns=1.5,
        wirelength_m=2.0,
        peak_temp_k=330.0,
        signal_tsvs=120,
        dummy_tsvs=32,
        voltage_volumes=5,
        runtime_s=1.0,
        feasible=True,
    )


def _execute(payload):
    return _metrics(payload.get("tag", 1.0))


class TestEnqueueAndClaim:
    def test_enqueue_idempotent_by_key(self, tmp_path):
        queue = WorkQueue(tmp_path)
        assert queue.enqueue("a", {"tag": 1}) is True
        assert queue.enqueue("a", {"tag": 2}) is False  # first spec wins
        assert queue.jobs() == {"a": {"tag": 1}}

    def test_claim_skips_completed_and_failed(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.enqueue("done", {})
        queue.enqueue("bad", {})
        queue.enqueue("open", {})
        leases = {}
        while (lease := queue.claim("w0")) is not None:
            leases[lease.key] = lease
        assert set(leases) == {"done", "bad", "open"}
        queue.complete(leases["done"], _metrics(), "w0")
        queue.record_failure(leases["bad"], "boom", "w0")
        leases["open"].release()
        remaining = queue.claim("w1")
        assert remaining is not None and remaining.key == "open"
        remaining.release()
        # clearing the failure opts the job back in
        queue.clear_failure("bad")
        keys = set()
        while (lease := queue.claim("w1")) is not None:
            keys.add(lease.key)
        assert keys == {"bad", "open"}

    def test_two_workers_racing_for_one_claim(self, tmp_path):
        """Exactly one of two simultaneous claimers wins, every round."""
        for round_no in range(20):
            queue = WorkQueue(tmp_path / f"round{round_no}")
            queue.enqueue("the-job", {})
            barrier = threading.Barrier(2)
            wins = []

            def contend(worker):
                barrier.wait()
                lease = queue.claim(worker)
                if lease is not None:
                    wins.append((worker, lease))

            threads = [
                threading.Thread(target=contend, args=(f"w{i}",)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(wins) == 1, f"round {round_no}: {len(wins)} claim winners"
            wins[0][1].release()

    def test_claim_returns_none_on_live_lease_and_empty_queue(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=60.0)
        assert queue.claim("w0") is None  # nothing queued
        queue.enqueue("a", {})
        held = queue.claim("w0")
        assert held is not None
        assert queue.claim("w1") is None  # live lease blocks
        held.release()
        again = queue.claim("w1")
        assert again is not None and again.key == "a"


class TestLeaseExpiry:
    def test_expired_lease_is_reclaimed(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=0.2)
        queue.enqueue("a", {"tag": 3})
        dead = queue.claim("dead")
        assert dead is not None
        assert queue.claim("live") is None
        time.sleep(0.3)
        lease = queue.claim("live")
        assert lease is not None and lease.key == "a"
        queue.complete(lease, _metrics(3), "live")
        assert set(queue.completed()) == {"a"}

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=0.3)
        queue.enqueue("a", {})
        held = queue.claim("w0")
        for _ in range(4):
            time.sleep(0.15)
            held.heartbeat()
            assert queue.claim("w1") is None  # still live past the raw ttl
        held.release()

    def test_only_one_stealer_wins_an_expired_lease(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=0.1)
        queue.enqueue("a", {})
        dead = queue.claim("dead")
        assert dead is not None
        time.sleep(0.2)
        barrier = threading.Barrier(4)
        wins = []

        def contend(worker):
            barrier.wait()
            lease = queue.claim(worker)
            if lease is not None:
                wins.append(lease)

        threads = [
            threading.Thread(target=contend, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert not list(queue.leases_dir.glob("*.stale-*"))  # tombstones reaped


def _doomed_worker(queue_dir, started_path):
    """Claim a job, signal the parent, then stall until SIGKILLed."""
    queue = WorkQueue(queue_dir, lease_ttl=0.5)
    lease = queue.claim("doomed")
    assert lease is not None
    with open(started_path, "w", encoding="utf-8") as fh:
        fh.write(lease.key)
    time.sleep(600.0)  # never finishes: the parent kills this process


class TestCrashedWorkerReclamation:
    def test_killed_workers_job_completed_by_survivor(self, tmp_path):
        """The acceptance scenario: a worker process dies mid-job (no
        heartbeat, no release); the survivor waits out the lease ttl,
        reclaims, and completes the job."""
        queue = WorkQueue(tmp_path, lease_ttl=0.5)
        queue.enqueue("crashy", {"tag": 7})
        started = tmp_path / "claimed.txt"
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_doomed_worker, args=(str(tmp_path), str(started)))
        proc.start()
        try:
            deadline = time.time() + 30.0
            while not started.exists() and time.time() < deadline:
                time.sleep(0.02)
            assert started.exists(), "doomed worker never claimed the job"
            proc.kill()  # SIGKILL: no cleanup, the lease file stays behind
            proc.join(timeout=10.0)
            assert proc.exitcode is not None
            # immediately after the kill the lease is still live
            assert queue.claim("survivor") is None
            done = run_worker(queue, _execute, worker_id="survivor")
        finally:
            if proc.is_alive():  # pragma: no cover - kill failed
                proc.terminate()
                proc.join()
        assert done == 1
        completed = queue.completed()
        assert set(completed) == {"crashy"}
        assert completed["crashy"].correlation_r1 == pytest.approx(7.0)
        # and the dead worker's lease is gone, not lingering as stale
        assert queue.status().stale == []


class TestRunWorker:
    def test_drains_queue_and_counts(self, tmp_path):
        queue = WorkQueue(tmp_path)
        for i in range(4):
            queue.enqueue(f"job{i}", {"tag": i})
        assert run_worker(queue, _execute, worker_id="w0") == 4
        assert queue.drained()
        assert run_worker(queue, _execute, worker_id="w0") == 0

    def test_max_jobs_caps_a_worker(self, tmp_path):
        queue = WorkQueue(tmp_path)
        for i in range(3):
            queue.enqueue(f"job{i}", {})
        assert run_worker(queue, _execute, worker_id="w0", max_jobs=2) == 2
        assert not queue.drained()

    def test_failures_recorded_and_not_retried(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.enqueue("good", {"tag": 1})
        queue.enqueue("bad", {})
        calls = []

        def flaky(payload):
            calls.append(payload)
            if "tag" not in payload:
                raise ValueError("synthetic flow failure")
            return _metrics(payload["tag"])

        assert run_worker(queue, flaky, worker_id="w0") == 1
        status = queue.status()
        assert status.completed == 1 and status.failed == 1 and status.pending == 0
        assert "synthetic flow failure" in str(queue.failures()["bad"]["error"])
        # a second worker does not re-run the deterministic failure
        assert run_worker(queue, flaky, worker_id="w1") == 0
        assert sum(1 for p in calls if p == {}) == 1

    def test_only_keys_scopes_claims_and_drain(self, tmp_path):
        """A worker scoped to its own keys neither executes nor blocks on
        unrelated jobs sharing the queue directory."""
        queue = WorkQueue(tmp_path)
        queue.enqueue("mine0", {"tag": 1})
        queue.enqueue("mine1", {"tag": 2})
        queue.enqueue("foreign", {"tag": 99})
        ran = []

        def spy(payload):
            ran.append(payload["tag"])
            return _metrics(payload["tag"])

        done = run_worker(
            queue, spy, worker_id="w0", only_keys=frozenset({"mine0", "mine1"})
        )
        assert done == 2
        assert sorted(ran) == [1, 2]  # the foreign job was never touched
        assert not queue.drained()  # ...and still pending for its owner
        assert queue.drained(frozenset({"mine0", "mine1"}))

    def test_wait_false_exits_on_inflight_work(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=60.0)
        queue.enqueue("held", {})
        held = queue.claim("other-worker")
        assert held is not None
        t0 = time.time()
        assert run_worker(queue, _execute, worker_id="w0", wait=False) == 0
        assert time.time() - t0 < 5.0
        held.release()


class TestMergeShards:
    def test_doubly_completed_job_lands_once(self, tmp_path):
        """Two workers both completed 'dup' (a lease expired under a
        live-but-slow worker): the merged store holds exactly one record."""
        queue = WorkQueue(tmp_path)
        queue.shard_for("w0").append("dup", _metrics(5))
        queue.shard_for("w0").append("only0", _metrics(1))
        queue.shard_for("w1").append("dup", _metrics(5))
        queue.shard_for("w1").append("only1", _metrics(2))
        merged = queue.merge()
        assert set(merged.keys()) == {"dup", "only0", "only1"}
        with open(merged.path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        assert sum(1 for r in records if r["key"] == "dup") == 1
        # idempotent: a second merge appends nothing
        queue.merge()
        assert len(ResultsStore(tmp_path).completed()) == 3

    def test_merge_into_external_store_dedups_against_it(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue")
        store = ResultsStore(tmp_path / "store")
        store.append("already", _metrics(9))
        queue.shard_for("w0").append("already", _metrics(9))
        queue.shard_for("w0").append("fresh", _metrics(4))
        assert store.merge_shards(queue.shards()) == 1
        assert set(store.keys()) == {"already", "fresh"}

    def test_concurrent_merges_serialize_without_duplicates(self, tmp_path):
        """Several processes' worth of merges racing (work pools finishing
        on multiple hosts) must still produce exactly one record per key."""
        queue = WorkQueue(tmp_path)
        for w in range(3):
            shard = queue.shard_for(f"w{w}")
            for k in range(4):
                shard.append(f"key{k}", _metrics(k))  # all shards overlap
        barrier = threading.Barrier(3)

        def merge():
            barrier.wait()
            WorkQueue(tmp_path).merge()  # fresh instance per "process"

        threads = [threading.Thread(target=merge) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with open(queue.store.path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        assert len(records) == 4  # one per key, no duplicate appends
        assert not (tmp_path / "merge.lock").exists()

    def test_stale_merge_lock_is_stolen(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=0.1)
        lock = tmp_path / "merge.lock"
        lock.write_text("dead-merger")
        os.utime(lock, (time.time() - 5.0, time.time() - 5.0))
        queue.shard_for("w0").append("a", _metrics(1))
        merged = queue.merge()  # must not deadlock on the dead holder
        assert set(merged.keys()) == {"a"}
        assert not lock.exists()

    def test_merge_shards_accepts_paths(self, tmp_path):
        shard = ResultsStore(tmp_path / "shards", filename="w9.jsonl")
        shard.append("a", _metrics(1))
        target = ResultsStore(tmp_path / "merged")
        assert target.merge_shards([shard.path]) == 1
        assert set(target.keys()) == {"a"}

    def test_merge_with_fenced_torn_and_empty_shards_at_once(self, tmp_path):
        """One merge over the full zoo: a fenced-out duplicate (zombie
        double-commit), a torn trailing shard line, and an empty shard
        file — only the live records land."""
        queue = WorkQueue(tmp_path)
        # zombie: completed "dup" at epoch 1, then lost its lease to a
        # reclamation that bumped the fence to epoch 2
        queue.shard_for("zombie").append("dup", _metrics(1), epoch=1)
        queue.shard_for("zombie").append("zombie-only", _metrics(2), epoch=1)
        # survivor: re-ran "dup" at the live epoch
        survivor = queue.shard_for("survivor")
        survivor.append("dup", _metrics(5), epoch=2)
        survivor.append("clean", _metrics(3), epoch=2)
        # torn trailing line: the survivor died mid-append afterwards
        with open(survivor.path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "key": "torn-victim", "metr')
        # a worker that claimed nothing before the sweep drained
        (queue.shards_dir / "idle.jsonl").touch()
        queue._write_fence("dup", epoch=2, steals=1)

        merged = queue.merge().completed()
        assert set(merged) == {"dup", "zombie-only", "clean"}
        # the *survivor's* record won, not the fenced-out zombie's
        assert merged["dup"].correlation_r1 == pytest.approx(5.0)
        # and completed() agrees with the merge about epoch liveness
        assert queue.completed()["dup"].correlation_r1 == pytest.approx(5.0)

    def test_fenced_out_record_does_not_mask_pending_job(self, tmp_path):
        """A zombie's stale-epoch completion must not make the job look
        done: claim() re-offers it to a live worker."""
        queue = WorkQueue(tmp_path, lease_ttl=60.0)
        queue.enqueue("j", {"tag": 1})
        queue.shard_for("zombie").append("j", _metrics(1), epoch=1)
        queue._write_fence("j", epoch=2, steals=1)
        assert "j" not in queue.completed()
        lease = queue.claim("live")
        assert lease is not None and lease.key == "j"
        assert lease.epoch == 3  # claims keep the fence monotonic
        queue.complete(lease, _metrics(9), "live")
        assert queue.merge().completed()["j"].correlation_r1 == pytest.approx(9.0)

    def test_repeated_merges_idempotent_property(self, tmp_path):
        """Property: for arbitrary shard contents (overlapping keys,
        epochs, fences), merging twice appends nothing the second time
        and leaves the store byte-identical."""
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import strategies as st

        keys = st.lists(
            st.sampled_from([f"k{i}" for i in range(5)]),
            min_size=0, max_size=5, unique=True,
        )
        counter = itertools.count()

        def snapshot(store):
            # zero live records never materializes results.jsonl
            return store.path.read_bytes() if store.path.exists() else b""

        @hypothesis.settings(
            max_examples=25, deadline=None,
            suppress_health_check=[hypothesis.HealthCheck.function_scoped_fixture],
        )
        @hypothesis.given(
            shard_keys=st.lists(keys, min_size=1, max_size=3),
            epochs=st.dictionaries(
                st.sampled_from([f"k{i}" for i in range(5)]),
                st.integers(min_value=0, max_value=3),
            ),
        )
        def check(shard_keys, epochs):
            root = tmp_path / f"case{next(counter)}"
            queue = WorkQueue(root)
            for w, shard in enumerate(shard_keys):
                for key in shard:
                    queue.shard_for(f"w{w}").append(
                        key, _metrics(w), epoch=epochs.get(key)
                    )
            for key, epoch in epochs.items():
                if epoch:
                    queue._write_fence(key, epoch=epoch, steals=0)
            queue.merge()
            first = snapshot(queue.store)
            first_records = queue.store.completed()
            queue.merge()
            assert snapshot(queue.store) == first
            # and a fresh queue instance (cold caches) agrees
            again = WorkQueue(root)
            again.merge()
            assert snapshot(again.store) == first
            assert again.store.completed().keys() == first_records.keys()

        check()


class TestStatus:
    def test_status_counts_and_lease_ages(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=0.2)
        for i in range(4):
            queue.enqueue(f"job{i}", {})
        done = queue.claim("w0")
        queue.complete(done, _metrics(), "w0")
        failed = queue.claim("w0")
        queue.record_failure(failed, "boom", "w0")
        live = queue.claim("w1")
        assert live is not None
        stale = queue.claim("dead")
        os.utime(stale.path, (time.time() - 5.0, time.time() - 5.0))
        status = queue.status()
        assert status.total == 4
        assert status.completed == 1
        assert status.failed == 1
        assert status.claimed == 1
        assert status.pending == 2  # the stale-leased and the live-leased job
        assert [e["worker"] for e in status.active] == ["w1"]
        assert [e["worker"] for e in status.stale] == ["dead"]
        assert set(status.failures) == {failed.key}

    def test_drained_empty_queue(self, tmp_path):
        assert WorkQueue(tmp_path).drained()


class TestLeaseObject:
    def test_release_and_heartbeat_tolerate_missing_file(self, tmp_path):
        lease = Lease(key="k", payload={}, path=tmp_path / "gone.lease")
        lease.heartbeat()  # no error
        lease.release()  # no error

    def test_rejects_nonpositive_ttl(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueue(tmp_path, lease_ttl=0.0)


class TestTwoWorkerSweepMatchesSingleHost:
    def test_merged_store_bit_identical_to_run_batch(self, tmp_path):
        """The acceptance criterion: a 2-worker queue sweep and the
        single-host serial ``run_batch`` produce stores with identical
        keys *and* identical metrics (flows are deterministic per key)."""
        jobs = [
            BatchJob(benchmark="n100", seed=s, iterations=25, grid=12)
            for s in range(2)
        ]
        serial_store = ResultsStore(tmp_path / "serial")
        run_batch(jobs, processes=1, store=serial_store)

        queue_store = ResultsStore(tmp_path / "queued")
        results = run_batch(
            jobs,
            processes=2,
            store=queue_store,
            queue_dir=tmp_path / "queued" / "queue",
            lease_ttl=60.0,
        )
        serial = serial_store.completed()
        merged = queue_store.completed()
        assert set(merged) == set(serial) == {j.key() for j in jobs}

        def frozen(metrics):
            # every field except wall-clock runtime is deterministic and
            # must match *exactly* (no approx): same flow, same bits.
            # degradation counts depend on process cache warmth (serial
            # in-process worker vs cold spawned workers), so they are
            # excluded like runtime
            out = metrics.to_dict()
            out.pop("runtime_s")
            out.pop("degradations", None)
            return out

        for key in serial:
            assert frozen(merged[key]) == frozen(serial[key]), key
        # run_batch returned the same records, in job order
        assert [frozen(r) for r in results] == [
            frozen(serial[j.key()]) for j in jobs
        ]
        # both workers' shards exist under the pinned queue dir
        shards = list((tmp_path / "queued" / "queue" / "shards").glob("*.jsonl"))
        assert shards, "queue sweep left no worker shards"

    def test_run_batch_ignores_foreign_jobs_in_shared_queue_dir(self, tmp_path):
        """Leftover jobs from another sweep in a persistent queue dir are
        neither executed nor waited on by an unrelated run_batch call."""
        store = ResultsStore(tmp_path)
        queue = WorkQueue(store.root / "queue")
        queue.enqueue("foreign-job", {"not": "a BatchJob payload"})
        job = BatchJob(benchmark="n100", seed=0, iterations=25, grid=12)
        results = run_batch([job], processes=1, store=store)
        assert results[0] is not None
        # the foreign job was never claimed: no failure, no completion
        assert "foreign-job" not in queue.failures()
        assert "foreign-job" not in queue.completed()
        assert not queue.drained()

    def test_run_batch_resumes_from_queue_shards(self, tmp_path):
        """Results durable in a shard but not yet merged into the store
        are honoured: the flow is not re-executed."""
        job = BatchJob(benchmark="n100", seed=0, iterations=25, grid=12)
        store = ResultsStore(tmp_path)
        queue = WorkQueue(store.root / "queue")
        queue.enqueue(job.key(), {})
        queue.shard_for("w0").append(job.key(), _metrics(0.777))

        from repro.exploration import study

        def boom(payload):
            raise AssertionError("flow re-executed despite shard record")

        orig = study.execute_batch_payload
        study.execute_batch_payload = boom
        try:
            results = run_batch([job], processes=1, store=store)
        finally:
            study.execute_batch_payload = orig
        assert results[0].correlation_r1 == pytest.approx(0.777)
        assert job.key() in store  # merged into the durable store


class TestRunBatchFailurePropagation:
    def test_failed_job_raises_with_detail_after_siblings_finish(
        self, tmp_path, monkeypatch
    ):
        from repro.exploration import study

        jobs = [
            BatchJob(benchmark="n100", seed=s, iterations=25, grid=12)
            for s in range(2)
        ]

        real = study._execute_batch_job

        def fail_seed_one(job):
            if job.seed == 1:
                raise ValueError("synthetic seed-1 failure")
            return real(job)

        monkeypatch.setattr(study, "_execute_batch_job", fail_seed_one)
        store = ResultsStore(tmp_path)
        with pytest.raises(RuntimeError, match="seed1"):
            run_batch(jobs, processes=1, store=store)
        # the sibling that succeeded is durably recorded regardless
        assert jobs[0].key() in store
        # a re-run retries the failure (clear_failure on enqueue) and,
        # once the flow behaves, completes the sweep
        monkeypatch.setattr(study, "_execute_batch_job", real)
        results = run_batch(jobs, processes=1, store=store)
        assert all(r is not None for r in results)
