"""Low-rank Woodbury solves for perturbed TSV patterns.

Oracle tests pin :class:`WoodburySolver` against fresh factorizations of
the perturbed stacks (the refactorize-per-candidate path it replaces),
and the fallback guards — rank crossover and the near-singular-core
residual probe — against their boundary conditions.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.layout.die import StackConfig
from repro.layout.grid import GridSpec
from repro.thermal.rc_network import ThermalNetwork, assemble, low_rank_update
from repro.thermal.stack import build_stack
from repro.thermal.steady_state import (
    SolverCache,
    SteadyStateSolver,
    WoodburySolver,
    woodbury_crossover_rank,
)

#: acceptance bar: Woodbury-path solves match fresh factorizations to
#: this *relative* error (they typically land around 1e-14)
ORACLE_RTOL = 1e-10


def _stack_pair(num_dies: int, grid_n: int = 16, bins=((4, 6, 4, 8),)):
    """(grid, base stack, perturbed stack) with dummy-TSV-like density bumps.

    ``bins`` lists (row0, row1, col0, col1) density rectangles; for
    stacks above two dies the perturbation lands on the (1, 2) interface
    as well, exercising the upper bond/bulk layers.
    """
    cfg = StackConfig.square(2000.0, num_dies=num_dies)
    grid = GridSpec(cfg.outline, grid_n, grid_n)
    base = build_stack(cfg, grid)
    density = np.zeros(grid.shape)
    for r0, r1, c0, c1 in bins:
        density[r0:r1, c0:c1] = 0.55
    if num_dies == 2:
        tsv_density = density
    else:
        upper = np.zeros(grid.shape)
        upper[1:3, 1:4] = 0.4
        tsv_density = {(0, 1): density, (1, 2): upper}
    modified = build_stack(cfg, grid, tsv_density=tsv_density)
    return grid, cfg, base, modified


def _power_maps(grid, num_dies, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random(grid.shape) * 2.0 / grid.nx / grid.ny for _ in range(num_dies)]


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.abs(a - b).max() / np.abs(b).max())


class TestLowRankUpdate:
    def test_support_is_localized(self):
        grid, _, base, modified = _stack_pair(2)
        update = low_rank_update(assemble(base), assemble(modified))
        # 8 perturbed bins touch the pierced bond/bulk cells, their
        # lateral neighbours, the vertical neighbours above/below, and
        # the boundary nodes — tens of nodes, not thousands
        assert 0 < update.rank < 200
        assert update.core.shape == (update.rank, update.rank)
        # the conductance delta is symmetric, like G itself
        np.testing.assert_allclose(update.core, update.core.T)

    def test_identical_networks_have_rank_zero(self):
        grid, _, base, _ = _stack_pair(2)
        net = assemble(base)
        update = low_rank_update(net, assemble(base))
        assert update.rank == 0

    def test_reconstructs_exact_delta(self):
        _, _, base, modified = _stack_pair(2)
        net_a, net_b = assemble(base), assemble(modified)
        update = low_rank_update(net_a, net_b)
        n = net_a.num_nodes
        u = sp.csc_matrix(
            (np.ones(update.rank), (update.indices, np.arange(update.rank))),
            shape=(n, update.rank),
        )
        rebuilt = net_a.conductance + u @ sp.csc_matrix(update.core) @ u.T
        assert abs(rebuilt - net_b.conductance).max() == 0.0

    def test_shape_mismatch_rejected(self):
        _, cfg, base, _ = _stack_pair(2)
        other_grid = GridSpec(cfg.outline, 8, 8)
        with pytest.raises(ValueError):
            low_rank_update(assemble(base), assemble(build_stack(cfg, other_grid)))


class TestWoodburyOracle:
    @pytest.mark.parametrize("num_dies", [2, 3])
    def test_solve_matches_fresh_factorization(self, num_dies):
        grid, _, base_stack, mod_stack = _stack_pair(num_dies)
        base = SteadyStateSolver(base_stack)
        # pin the crossover high: these tests check the low-rank math, so
        # the policy (tested separately) must not reroute small grids
        woodbury = WoodburySolver(base, mod_stack, crossover_rank=10_000)
        assert woodbury.fallback_reason is None
        fresh = SteadyStateSolver(mod_stack)
        pm = _power_maps(grid, num_dies)
        a, b = woodbury.solve(pm), fresh.solve(pm)
        assert _rel_err(a.nodal, b.nodal) <= ORACLE_RTOL
        for da, db in zip(a.die_maps, b.die_maps):
            assert _rel_err(da, db) <= ORACLE_RTOL

    @pytest.mark.parametrize("num_dies", [2, 3])
    def test_solve_many_matches_fresh_factorization(self, num_dies):
        grid, _, base_stack, mod_stack = _stack_pair(num_dies)
        base = SteadyStateSolver(base_stack)
        woodbury = WoodburySolver(base, mod_stack, crossover_rank=10_000)
        assert woodbury.fallback_reason is None
        fresh = SteadyStateSolver(mod_stack)
        sets = [_power_maps(grid, num_dies, seed=s) for s in range(6)]
        for ra, rb in zip(woodbury.solve_many(sets), fresh.solve_many(sets)):
            assert _rel_err(ra.nodal, rb.nodal) <= ORACLE_RTOL

    def test_rank_zero_update_solves_through_base(self):
        grid, cfg, base_stack, _ = _stack_pair(2)
        base = SteadyStateSolver(base_stack)
        woodbury = WoodburySolver(base, build_stack(cfg, grid))
        assert woodbury.update.rank == 0
        assert woodbury.is_low_rank
        pm = _power_maps(grid, 2)
        np.testing.assert_array_equal(
            woodbury.solve(pm).nodal, base.solve(pm).nodal
        )

    def test_unwraps_woodbury_base(self):
        """Chaining onto a Woodbury base must ride the true factorization."""
        grid, cfg, base_stack, mod_stack = _stack_pair(2)
        base = SteadyStateSolver(base_stack)
        first = WoodburySolver(base, mod_stack, crossover_rank=10_000)
        density = np.zeros(grid.shape)
        density[4:8, 4:8] = 0.55
        density[12:14, 2:5] = 0.3
        second_stack = build_stack(cfg, grid, tsv_density=density)
        second = WoodburySolver(first, second_stack, crossover_rank=10_000)
        assert second.base is base
        fresh = SteadyStateSolver(second_stack)
        pm = _power_maps(grid, 2)
        assert _rel_err(second.solve(pm).nodal, fresh.solve(pm).nodal) <= ORACLE_RTOL


class TestFallbackBoundary:
    def test_rank_crossover_falls_back_bit_comparable(self):
        """A candidate touching enough bins to exceed the crossover must
        take the full-refactorization path and produce metrics
        bit-comparable to a fresh solver (identical factorization)."""
        grid, cfg, base_stack, _ = _stack_pair(2)
        base = SteadyStateSolver(base_stack)
        dense = np.full(grid.shape, 0.4)  # every bin touched: rank ~ N/layers
        mod_stack = build_stack(cfg, grid, tsv_density=dense)
        woodbury = WoodburySolver(base, mod_stack)
        assert woodbury.fallback_reason == "rank"
        assert not woodbury.is_low_rank
        assert woodbury.update.rank > woodbury.crossover_rank
        fresh = SteadyStateSolver(mod_stack)
        pm = _power_maps(grid, 2)
        np.testing.assert_array_equal(woodbury.solve(pm).nodal, fresh.solve(pm).nodal)
        for ra, rb in zip(
            woodbury.solve_many([pm]), fresh.solve_many([pm])
        ):
            np.testing.assert_array_equal(ra.nodal, rb.nodal)

    def test_explicit_crossover_rank_forces_fallback(self):
        grid, _, base_stack, mod_stack = _stack_pair(2)
        base = SteadyStateSolver(base_stack)
        low_rank = WoodburySolver(base, mod_stack)
        assert low_rank.is_low_rank
        forced = WoodburySolver(
            base, mod_stack, crossover_rank=low_rank.update.rank - 1
        )
        assert forced.fallback_reason == "rank"

    def test_near_singular_core_trips_residual_probe(self):
        """A crafted update that drives G' toward singularity must be
        rejected by the probe solve, not returned as garbage."""
        grid, _, base_stack, _ = _stack_pair(2)
        base = SteadyStateSolver(base_stack)
        n = base.network.num_nodes
        index = n // 2
        e = np.zeros(n)
        e[index] = 1.0
        w = float(base._lu.solve(e)[index])  # (G^-1)_ii
        # G' = G - (1 - eps)/w * e_i e_i^T makes I + C·W ~ eps: the dense
        # core is numerically singular and the Woodbury correction
        # explodes — exactly what the probe residual must catch
        scale = -(1.0 - 1e-13) / w
        delta = sp.csc_matrix(([scale], ([index], [index])), shape=(n, n))
        crafted = ThermalNetwork(
            stack=base_stack,
            conductance=(base.network.conductance + delta).tocsc(),
            capacitance=base.network.capacitance,
            boundary=base.network.boundary,
        )
        woodbury = WoodburySolver(base, base_stack, network=crafted)
        assert woodbury.fallback_reason == "residual"
        assert not woodbury.is_low_rank

    def test_rebase_returns_full_solver_for_the_perturbed_stack(self):
        grid, _, base_stack, mod_stack = _stack_pair(2)
        base = SteadyStateSolver(base_stack)
        woodbury = WoodburySolver(base, mod_stack, crossover_rank=10_000)
        assert woodbury.is_low_rank
        full = woodbury.rebase()
        assert isinstance(full, SteadyStateSolver)
        pm = _power_maps(grid, 2)
        np.testing.assert_array_equal(
            full.solve(pm).nodal, SteadyStateSolver(mod_stack).solve(pm).nodal
        )


class TestCrossoverModel:
    def test_grows_with_network_size(self):
        assert (
            woodbury_crossover_rank(40960)
            > woodbury_crossover_rank(10240)
            > woodbury_crossover_rank(2560)
            >= 1
        )

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WOODBURY_CROSSOVER", "7")
        assert woodbury_crossover_rank(40960) == 7
        monkeypatch.setenv("REPRO_WOODBURY_CROSSOVER", "nope")
        with pytest.raises(ValueError):
            woodbury_crossover_rank(40960)


class TestSolverCacheIntegration:
    def test_incremental_entries_are_cached_and_shared(self):
        grid, cfg, base_stack, _ = _stack_pair(2)
        cache = SolverCache(maxsize=4)
        base = cache.solver(cfg, grid)
        density = np.zeros(grid.shape)
        density[4:6, 4:8] = 0.55
        first = cache.incremental_solver(
            cfg, grid, density, base=base, crossover_rank=10_000
        )
        assert isinstance(first, WoodburySolver)
        assert first.is_low_rank
        again = cache.incremental_solver(cfg, grid, density, base=base)
        assert again is first
        # the key space is shared with full-solver requests, but .solver()
        # guarantees an independent factorization: the Woodbury entry is
        # upgraded in place (once), never returned as-is — otherwise an
        # incremental-vs-full cross-check through a warm cache would
        # silently compare the Woodbury path against itself
        upgraded = cache.solver(cfg, grid, density)
        assert not isinstance(upgraded, WoodburySolver)
        assert cache.solver(cfg, grid, density) is upgraded
        pm = _power_maps(grid, 2)
        assert _rel_err(first.solve(pm).nodal, upgraded.solve(pm).nodal) <= ORACLE_RTOL

    def test_persisted_base_deflates_crossover(self, tmp_path):
        """The crossover model is calibrated on native SuperLU
        back-substitution; a disk-loaded base solves ~15x slower per RHS,
        so the low-rank path must break even that much earlier."""
        grid, cfg, base_stack, mod_stack = _stack_pair(2)
        warm = SolverCache(disk_dir=tmp_path)
        warm.solver(cfg, grid)  # persist the factorization
        cold = SolverCache(disk_dir=tmp_path)
        persisted_base = cold.solver(cfg, grid)
        assert cold.disk_hits == 1
        native_base = SteadyStateSolver(base_stack)
        native = WoodburySolver(native_base, mod_stack)
        slow = WoodburySolver(persisted_base, mod_stack)
        assert slow.crossover_rank == max(1, native.crossover_rank // 15)
        # at these sizes that forces the fallback — and the result is
        # still exact (its own native factorization)
        assert slow.fallback_reason == "rank"
        pm = _power_maps(grid, 2)
        np.testing.assert_array_equal(
            slow.solve(pm).nodal, SteadyStateSolver(mod_stack).solve(pm).nodal
        )

    def test_drop_persisted_solvers_evicts_woodbury_over_persisted_base(
        self, tmp_path
    ):
        grid, cfg, base_stack, _ = _stack_pair(2)
        SolverCache(disk_dir=tmp_path).solver(cfg, grid)
        cache = SolverCache(disk_dir=tmp_path)
        persisted_base = cache.solver(cfg, grid)
        density = np.zeros(grid.shape)
        density[4:6, 4:8] = 0.55
        woodbury = cache.incremental_solver(
            cfg, grid, density, base=persisted_base, crossover_rank=10_000
        )
        assert woodbury.is_low_rank
        assert len(cache) == 2
        # both entries route solves through the persisted factors: the
        # base directly, the Woodbury one via its base LU
        assert cache.drop_persisted_solvers() == 2
        assert len(cache) == 0

    def test_solver_upgrade_persists_to_disk_cache(self, tmp_path):
        """A network first seen incrementally and later requested as a
        full solver must still land in the shared disk cache — other
        workers' warm-up must not depend on request order."""
        grid, cfg, base_stack, _ = _stack_pair(2)
        cache = SolverCache(disk_dir=tmp_path)
        base = cache.solver(cfg, grid)
        density = np.zeros(grid.shape)
        density[4:6, 4:8] = 0.55
        cache.incremental_solver(
            cfg, grid, density, base=base, crossover_rank=10_000
        )
        upgraded = cache.solver(cfg, grid, density)  # the upgrade path
        assert not isinstance(upgraded, WoodburySolver)
        other_worker = SolverCache(disk_dir=tmp_path)
        other_worker.solver(cfg, grid, density)
        assert other_worker.disk_hits == 1

    def test_incremental_solver_for_floorplan_matches_full(self):
        from repro.layout.floorplan import Floorplan3D
        from repro.layout.module import Module, Placement
        from repro.layout.tsv import TSVKind, place_island

        cfg = StackConfig.square(1000.0)
        grid = GridSpec(cfg.outline, 12, 12)
        mods = {
            "a": Module("a", 400, 400, power=2.0),
            "b": Module("b", 400, 400, power=1.0),
        }
        fp = Floorplan3D(cfg, {
            "a": Placement(mods["a"], 50, 50, die=0),
            "b": Placement(mods["b"], 500, 500, die=1),
        })
        cache = SolverCache(maxsize=4)
        base = cache.solver_for_floorplan(fp, grid)
        candidate = fp.copy()
        candidate.tsvs.extend(
            place_island(grid.cell_rect(5, 5), die_from=0, die_to=1,
                         kind=TSVKind.THERMAL, diameter=20.0, keepout=5.0)
        )
        woodbury = cache.incremental_solver_for_floorplan(
            candidate, grid, base=base
        )
        fresh = SteadyStateSolver(
            build_stack(cfg, grid, tsv_density=candidate.tsv_densities(grid))
        )
        pm = _power_maps(grid, 2)
        assert _rel_err(woodbury.solve(pm).nodal, fresh.solve(pm).nodal) <= ORACLE_RTOL


class TestLoopEquivalence:
    def test_mitigation_incremental_matches_oracle(self):
        """The Woodbury-path loop must pick the same insertions and report
        the same trace as the refactorize-per-candidate oracle."""
        from tests.test_mitigation import _hotspot_floorplan

        from repro.mitigation.dummy_tsv import MitigationConfig, insert_dummy_tsvs

        fp = _hotspot_floorplan()
        knobs = dict(samples=12, tsvs_per_round=4, max_rounds=3,
                     grid_nx=16, grid_ny=16, seed=1, candidates_per_round=2)
        inc = insert_dummy_tsvs(fp, MitigationConfig(**knobs, incremental=True))
        full = insert_dummy_tsvs(fp, MitigationConfig(**knobs, incremental=False))
        assert inc.inserted == full.inserted
        assert inc.rounds == full.rounds
        np.testing.assert_allclose(
            inc.correlation_trace, full.correlation_trace, rtol=0, atol=1e-9
        )
        # at 16x16 a 4-bin group stays under the crossover: the loop must
        # actually have used the incremental path, not just fallen back
        assert inc.woodbury_candidates > 0
        assert full.woodbury_candidates == 0
        assert full.refactorized_candidates >= full.rounds

    def test_proactive_rebaseline_keeps_candidates_low_rank(self):
        """Once committed insertions approach the threshold, the loop must
        pay ONE re-baseline factorization — not let every candidate of
        the next round fall back and factorize independently."""
        from tests.test_mitigation import _hotspot_floorplan

        from repro.mitigation.dummy_tsv import MitigationConfig, insert_dummy_tsvs

        fp = _hotspot_floorplan()
        report = insert_dummy_tsvs(fp, MitigationConfig(
            samples=12, tsvs_per_round=4, max_rounds=4, grid_nx=16, grid_ny=16,
            seed=1, candidates_per_round=2, incremental=True, rebase_rank=80,
        ))
        assert report.woodbury_candidates > 0
        if report.rounds >= 2 and report.inserted > 0:
            assert report.rebaselines >= 1
        # every candidate stayed on the cheap path; re-baselines happened
        # between rounds instead of inside them
        assert report.refactorized_candidates == 0

    def test_exploration_incremental_matches_oracle(self):
        from repro.exploration.study import run_exploration

        inc = run_exploration(grid_n=12, seed=3, cache=SolverCache(maxsize=8),
                              incremental=True)
        full = run_exploration(grid_n=12, seed=3, cache=SolverCache(maxsize=8),
                               incremental=False)
        assert len(inc) == len(full)
        for a, b in zip(inc, full):
            assert a.power_pattern == b.power_pattern
            assert a.tsv_pattern == b.tsv_pattern
            assert a.r_bottom == pytest.approx(b.r_bottom, abs=1e-10)
            assert a.r_top == pytest.approx(b.r_top, abs=1e-10)
            assert a.peak_k == pytest.approx(b.peak_k, abs=1e-8)

    def test_exploration_oracle_run_upgrades_shared_cache_entries(self):
        """An incremental=False run over a cache warmed by an incremental
        run must not be served Woodbury entries — the oracle path exists
        to be independent of the code it cross-checks."""
        from repro.exploration.study import run_exploration

        cache = SolverCache(maxsize=16)
        run_exploration(grid_n=12, seed=3, cache=cache, incremental=True)
        # (at this tiny grid the patterns all exceed the crossover, so the
        # entries are fallback-mode Woodbury wrappers — the upgrade
        # contract applies to any wrapper, low-rank or not)
        assert any(
            isinstance(s, WoodburySolver) for s in cache._entries.values()
        )
        run_exploration(grid_n=12, seed=3, cache=cache, incremental=False)
        assert not any(
            isinstance(s, WoodburySolver) for s in cache._entries.values()
        )
