"""Tests for the fast power-blurring thermal model and its calibration."""

import numpy as np
import pytest

from repro.layout.die import StackConfig
from repro.layout.grid import GridSpec
from repro.leakage.pearson import pearson
from repro.thermal.fast import FastThermalModel, MaskParams, calibrate
from repro.thermal.stack import build_stack
from repro.thermal.steady_state import SteadyStateSolver


class TestMaskParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            MaskParams(amplitude=-1, sigma=1)
        with pytest.raises(ValueError):
            MaskParams(amplitude=1, sigma=0)


class TestFastModel:
    def test_default_masks_cover_all_pairs(self):
        m = FastThermalModel(num_dies=2)
        assert set(m.masks) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_self_heating_stronger_than_cross(self):
        m = FastThermalModel(num_dies=2)
        assert m.masks[(0, 0)].amplitude > m.masks[(0, 1)].amplitude

    def test_estimate_shapes_and_baseline(self):
        m = FastThermalModel(num_dies=2)
        pm = np.zeros((16, 16))
        maps = m.estimate([pm, pm])
        assert len(maps) == 2
        assert all(np.allclose(t, m.ambient) for t in maps)

    def test_wrong_map_count_rejected(self):
        m = FastThermalModel(num_dies=2)
        with pytest.raises(ValueError):
            m.estimate([np.zeros((8, 8))])

    def test_point_source_heats_locally(self):
        m = FastThermalModel(num_dies=2)
        pm = np.zeros((32, 32))
        pm[16, 16] = 0.1
        t0 = m.estimate([pm, np.zeros((32, 32))])[0]
        rise = t0 - m.ambient
        assert rise[16, 16] == rise.max()
        assert rise[16, 16] > 0
        # far corner sees only the wide global component
        assert rise[0, 0] < rise[16, 16] / 2

    def test_tsv_attenuation_cools(self):
        m = FastThermalModel(num_dies=2)
        pm = np.zeros((32, 32))
        pm[16, 16] = 0.1
        density = np.zeros((32, 32))
        density[14:19, 14:19] = 1.0
        hot = m.estimate([pm, np.zeros((32, 32))])[0]
        cooled = m.estimate([pm, np.zeros((32, 32))], tsv_density=density)[0]
        assert cooled[16, 16] < hot[16, 16]

    def test_estimate_die_matches_estimate(self):
        m = FastThermalModel(num_dies=2)
        rng = np.random.default_rng(0)
        pms = [rng.random((16, 16)) * 0.01 for _ in range(2)]
        full = m.estimate(pms)
        single = m.estimate_die(1, pms)
        assert np.allclose(full[1], single)

    def test_linearity(self):
        m = FastThermalModel(num_dies=2)
        pm = np.zeros((16, 16))
        pm[8, 8] = 0.05
        z = np.zeros((16, 16))
        r1 = m.estimate([pm, z])[0] - m.ambient
        r2 = m.estimate([2 * pm, z])[0] - m.ambient
        assert np.allclose(r2, 2 * r1, rtol=1e-9)


class TestCalibration:
    @pytest.fixture(scope="class")
    def setup(self):
        cfg = StackConfig.square(2000.0)
        grid = GridSpec(cfg.outline, 24, 24)
        solver = SteadyStateSolver(build_stack(cfg, grid))
        return cfg, grid, solver

    def test_calibrated_model_tracks_detailed(self, setup):
        """The fast estimate must correlate strongly with the detailed
        solution on module-scale (blotchy) power maps — its job is
        ranking layouts inside the SA loop."""
        from scipy.ndimage import gaussian_filter

        _, grid, solver = setup
        model = calibrate(solver, grid, samples=3, seed=1)
        rng = np.random.default_rng(5)
        pm0 = gaussian_filter(rng.random(grid.shape), 2.0, mode="nearest")
        pm1 = gaussian_filter(rng.random(grid.shape), 2.0, mode="nearest")
        pm0 *= 4.0 / pm0.sum()
        pm1 *= 4.0 / pm1.sum()
        detailed = solver.solve([pm0, pm1])
        fast = model.estimate([pm0, pm1])
        for d in range(2):
            r = pearson(detailed.die_maps[d], fast[d])
            assert r > 0.75, f"die {d}: fast/detailed correlation {r:.3f}"

    def test_calibrated_amplitudes_positive(self, setup):
        _, grid, solver = setup
        model = calibrate(solver, grid, samples=2, seed=2)
        for params in model.masks.values():
            assert params.amplitude > 0
            assert params.sigma > 0

    def test_self_amplitude_exceeds_cross(self, setup):
        _, grid, solver = setup
        model = calibrate(solver, grid, samples=3, seed=3)
        assert model.masks[(0, 0)].amplitude > model.masks[(0, 1)].amplitude
        assert model.masks[(1, 1)].amplitude > model.masks[(1, 0)].amplitude
