"""Tests for the thermal covert channel (Sec. 2.1 motivation)."""

import numpy as np
import pytest

from repro.attacks.covert import (
    CovertChannelResult,
    channel_capacity_sweep,
    run_covert_channel,
)
from repro.layout.die import StackConfig
from repro.layout.floorplan import Floorplan3D
from repro.layout.module import Module, Placement


@pytest.fixture(scope="module")
def floorplan():
    mods = {
        "tx": Module("tx", 300, 300, power=2.0),
        "bg1": Module("bg1", 300, 300, power=0.3),
        "bg2": Module("bg2", 300, 300, power=0.3),
        "rx_host": Module("rx_host", 400, 400, power=0.4),
    }
    placements = {
        "tx": Placement(mods["tx"], 100, 100, die=0),
        "bg1": Placement(mods["bg1"], 600, 600, die=0),
        "bg2": Placement(mods["bg2"], 100, 600, die=0),
        "rx_host": Placement(mods["rx_host"], 100, 100, die=1),
    }
    return Floorplan3D(StackConfig.square(1000.0), placements)


class TestCovertChannel:
    def test_slow_bits_transmit_cleanly(self, floorplan):
        """Well below the thermal cutoff, the channel is essentially
        error-free — the Masti-style covert channel works."""
        tx = floorplan.placements["tx"]
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        result = run_covert_channel(
            floorplan, "tx", tx.center, receiver_die=0, bits=bits,
            bit_period_s=0.4, grid_n=12,
        )
        assert result.bit_error_rate <= 0.25
        assert result.bandwidth_bps == pytest.approx(2.5)

    def test_cross_die_reception(self, floorplan):
        """The receiver can sit on the other die (TSV/bond coupling)."""
        tx = floorplan.placements["tx"]
        bits = [1, 0, 1, 0, 1, 0]
        result = run_covert_channel(
            floorplan, "tx", tx.center, receiver_die=1, bits=bits,
            bit_period_s=0.4, grid_n=12,
        )
        assert result.bit_error_rate <= 0.35

    def test_fast_bits_degrade(self, floorplan):
        """The low-pass limitation (Sec. 2.1): raising the symbol rate
        past the thermal cutoff raises the error rate."""
        tx = floorplan.placements["tx"]
        results = channel_capacity_sweep(
            floorplan, "tx", tx.center, receiver_die=0,
            bit_periods_s=(0.4, 0.01), bits=12, grid_n=12, seed=1,
        )
        slow, fast = results
        assert fast.bit_error_rate >= slow.bit_error_rate

    def test_effective_bps_zero_at_chance(self):
        r = CovertChannelResult(0.1, [0, 1] * 8, [1, 0] * 8)
        assert r.effective_bps == 0.0

    def test_validation(self, floorplan):
        with pytest.raises(KeyError):
            run_covert_channel(floorplan, "nope", (0, 0), 0, [1])
        with pytest.raises(ValueError):
            run_covert_channel(floorplan, "tx", (0, 0), 0, [])
