"""Tests for the parallel-tempering layer (repro.floorplan.tempering)."""

import os

import pytest

from repro.benchmarks import load
from repro.benchmarks.generator import BenchmarkSpec, generate_circuit
from repro.core.config import FlowConfig
from repro.core.flow import run_flow
from repro.exploration.study import BatchJob
from repro.floorplan.annealer import AnnealConfig, anneal
from repro.floorplan.objectives import FloorplanMode
from repro.floorplan.tempering import (
    IN_POOL_ENV,
    PROCESSES_ENV,
    resolve_replica_processes,
    temper,
)
from repro.layout.die import StackConfig


@pytest.fixture(scope="module")
def tiny_circuit():
    spec = BenchmarkSpec("tiny", 0, 16, 1, 40, 8, 0.25, 1.2, seed=5)
    circ = generate_circuit(spec)
    stack = StackConfig(spec.outline)
    return circ, stack


@pytest.fixture(scope="module")
def n100():
    return load("n100")


def _placements(res):
    return {
        n: (p.x, p.y, p.die, p.rotated)
        for n, p in res.floorplan.placements.items()
    }


class TestSingleReplicaEquivalence:
    """The non-negotiable oracle: replicas=1 IS the legacy anneal()."""

    @pytest.mark.parametrize(
        "mode", [FloorplanMode.POWER_AWARE, FloorplanMode.TSC_AWARE]
    )
    def test_bitwise_equals_anneal_n100(self, n100, mode):
        circ, stack = n100
        cfg = AnnealConfig(iterations=60, seed=3, grid_nx=16, grid_ny=16,
                           calibration_samples=6)
        ref = anneal(circ.modules, stack, circ.nets, circ.terminals,
                     mode=mode, config=cfg)
        res = temper(circ.modules, stack, circ.nets, circ.terminals,
                     mode=mode, config=cfg, replicas=1)
        assert res.history == ref.history  # exact float equality
        assert res.accepted == ref.accepted
        assert res.cost == ref.cost
        assert _placements(res) == _placements(ref)
        if ref.best_leakage is None:
            assert res.best_leakage is None
        else:
            assert res.best_leakage.die_of == ref.best_leakage.die_of


class TestExchangeDeterminism:
    def test_identical_across_process_counts(self, tiny_circuit):
        """Same (seed, replicas) => identical result for any pool size."""
        circ, stack = tiny_circuit
        cfg = AnnealConfig(iterations=90, seed=7, grid_nx=16, grid_ny=16,
                           calibration_samples=4)
        results = [
            temper(circ.modules, stack, circ.nets, circ.terminals,
                   config=cfg, replicas=3, exchange_every=10,
                   processes=procs)
            for procs in (1, 2)
        ]
        serial, pooled = results
        assert serial.history == pooled.history
        assert serial.accepted == pooled.accepted
        assert serial.cost == pooled.cost
        assert _placements(serial) == _placements(pooled)
        assert serial.exchange_attempts == pooled.exchange_attempts
        assert serial.exchange_accepts == pooled.exchange_accepts
        # with 3 rungs and 8 exchange rounds, swaps were actually tried
        assert serial.exchange_attempts > 0
        assert serial.replicas == 3
        assert serial.iterations == 90  # total budget preserved

    def test_seed_changes_result(self, tiny_circuit):
        circ, stack = tiny_circuit
        runs = []
        for seed in (1, 2):
            cfg = AnnealConfig(iterations=60, seed=seed, grid_nx=16,
                               grid_ny=16, calibration_samples=4)
            runs.append(
                temper(circ.modules, stack, circ.nets, circ.terminals,
                       config=cfg, replicas=2, exchange_every=10,
                       processes=1)
            )
        assert runs[0].history != runs[1].history


class TestValidation:
    def test_bad_arguments(self, tiny_circuit):
        circ, stack = tiny_circuit
        cfg = AnnealConfig(iterations=10, seed=0)
        with pytest.raises(ValueError):
            temper(circ.modules, stack, config=cfg, replicas=0)
        with pytest.raises(ValueError):
            temper(circ.modules, stack, config=cfg, replicas=2,
                   exchange_every=0)
        with pytest.raises(ValueError):
            temper(circ.modules, stack, config=cfg, replicas=2,
                   ladder_ratio=1.0)
        with pytest.raises(ValueError):
            # 10 iterations cannot feed 16 replicas
            temper(circ.modules, stack, config=cfg, replicas=16)

    def test_flow_config_validates_replicas(self):
        with pytest.raises(ValueError):
            FlowConfig(replicas=0)
        with pytest.raises(ValueError):
            FlowConfig(exchange_every=0)


class TestNestedPoolGuard:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(IN_POOL_ENV, "1")
        assert resolve_replica_processes(4, processes=3) == 3

    def test_env_override_wins_over_guard(self, monkeypatch):
        monkeypatch.setenv(IN_POOL_ENV, "1")
        monkeypatch.setenv(PROCESSES_ENV, "2")
        assert resolve_replica_processes(4) == 2

    def test_pool_worker_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(PROCESSES_ENV, raising=False)
        monkeypatch.setenv(IN_POOL_ENV, "1")
        assert resolve_replica_processes(8) == 1

    def test_default_is_cpu_bounded(self, monkeypatch):
        monkeypatch.delenv(PROCESSES_ENV, raising=False)
        monkeypatch.delenv(IN_POOL_ENV, raising=False)
        procs = resolve_replica_processes(4)
        assert 1 <= procs <= 4
        assert procs <= (os.cpu_count() or 1)

    def test_batch_worker_sets_guard(self, tmp_path):
        """batch_worker_main marks its process as a pool worker."""
        from repro.core.queue import WorkQueue
        from repro.exploration.study import batch_worker_main

        WorkQueue(tmp_path)  # create an empty queue to drain
        prev = os.environ.pop(IN_POOL_ENV, None)
        try:
            batch_worker_main(str(tmp_path), max_jobs=0)
            assert os.environ.get(IN_POOL_ENV) == "1"
        finally:
            if prev is None:
                os.environ.pop(IN_POOL_ENV, None)
            else:
                os.environ[IN_POOL_ENV] = prev


class TestPlumbing:
    def test_run_flow_with_replicas(self, tiny_circuit):
        circ, stack = tiny_circuit
        config = FlowConfig(
            anneal=AnnealConfig(iterations=60, seed=2, grid_nx=16,
                                grid_ny=16, calibration_samples=4),
            verify_nx=16, verify_ny=16,
            replicas=2, exchange_every=15, replica_processes=1,
        )
        outcome = run_flow(circuit=circ, stack=stack, config=config)
        assert outcome.anneal_result.replicas == 2
        assert outcome.anneal_result.iterations == 60

    def test_batch_job_key_backward_compatible(self):
        plain = BatchJob(benchmark="n100", seed=1)
        assert plain.key() == "n100|power_aware|seed1|it1500|grid32|dies2"
        tempered = BatchJob(benchmark="n100", seed=1, replicas=4)
        assert tempered.key().endswith("|rep4x50")
        assert plain.key() != tempered.key()
        # exchange cadence changes the outcome, so it changes the key
        assert (
            BatchJob(benchmark="n100", replicas=4, exchange_every=25).key()
            != BatchJob(benchmark="n100", replicas=4, exchange_every=50).key()
        )
