"""Tests for TSV records, islands, density maps, and the analysis grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.geometry import Rect
from repro.layout.grid import GridSpec, bin_centers, rasterize_power, rasterize_value_map
from repro.layout.module import Module, Placement
from repro.layout.tsv import (
    TSV,
    TSVIsland,
    TSVKind,
    place_island,
    place_regular_grid,
    tsv_cell_occupancy,
    tsv_density_map,
)


class TestTSV:
    def test_validation(self):
        with pytest.raises(ValueError):
            TSV(0, 0, 0, 0)  # same die
        with pytest.raises(ValueError):
            TSV(0, 0, 0, 1, diameter=0)
        with pytest.raises(ValueError):
            TSV(0, 0, 0, 1, keepout=-1)
        with pytest.raises(ValueError):
            TSV(0, 0, 0, 1, kind="weird")

    def test_footprint_and_pitch(self):
        t = TSV(100, 100, 0, 1, diameter=5, keepout=2.5)
        assert t.pitch == 10.0
        fp = t.footprint
        assert fp.w == 10 and fp.center.as_tuple() == (100, 100)

    def test_copper_area(self):
        t = TSV(0, 0, 0, 1, diameter=10)
        assert t.copper_area == pytest.approx(np.pi * 25)


class TestIslandsAndGrids:
    def test_island_packs_at_pitch(self):
        island = TSVIsland(Rect(0, 0, 100, 100), 0, 1, diameter=5, keepout=2.5)
        vias = island.vias()
        assert len(vias) == 100  # 10x10 at pitch 10
        xs = sorted({v.x for v in vias})
        assert xs[1] - xs[0] == pytest.approx(10.0)

    def test_regular_grid_count(self):
        tsvs = place_regular_grid(Rect(0, 0, 1000, 1000), 4, 5)
        assert len(tsvs) == 20

    def test_regular_grid_validation(self):
        with pytest.raises(ValueError):
            place_regular_grid(Rect(0, 0, 100, 100), 0, 1)

    def test_place_island_helper(self):
        vias = place_island(Rect(0, 0, 50, 50))
        assert len(vias) == 25


class TestOccupancy:
    def test_occupancy_bounded(self):
        outline = Rect(0, 0, 100, 100)
        tsvs = place_island(Rect(0, 0, 100, 100))
        occ = tsv_cell_occupancy(tsvs, outline, 4, 4)
        assert occ.shape == (4, 4)
        assert occ.max() <= 1.0 + 1e-9
        assert occ.min() >= 0.0

    def test_full_island_saturates(self):
        outline = Rect(0, 0, 100, 100)
        tsvs = place_island(outline)
        occ = tsv_cell_occupancy(tsvs, outline, 2, 2)
        assert occ.mean() == pytest.approx(1.0, abs=0.02)

    def test_empty(self):
        occ = tsv_cell_occupancy([], Rect(0, 0, 10, 10), 3, 3)
        assert occ.sum() == 0.0

    def test_density_map_die_pair_filter(self):
        outline = Rect(0, 0, 100, 100)
        t01 = TSV(50, 50, 0, 1)
        t12 = TSV(50, 50, 1, 2)
        d = tsv_density_map([t01, t12], outline, 2, 2, between=(0, 1))
        d_all = tsv_density_map([t01, t12], outline, 2, 2, between=None)
        assert d.sum() < d_all.sum()

    def test_out_of_outline_tsv_ignored(self):
        occ = tsv_cell_occupancy([TSV(500, 500, 0, 1)], Rect(0, 0, 100, 100), 2, 2)
        assert occ.sum() == 0.0


class TestGridSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            GridSpec(Rect(0, 0, 10, 10), nx=0)

    def test_cell_geometry(self):
        g = GridSpec(Rect(0, 0, 100, 50), 10, 5)
        assert g.cell_w == 10 and g.cell_h == 10
        assert g.cell_area == 100
        assert g.shape == (5, 10)
        assert g.cell_rect(0, 0) == Rect(0, 0, 10, 10)

    def test_cell_of_clipping(self):
        g = GridSpec(Rect(0, 0, 100, 100), 10, 10)
        assert g.cell_of(-5, -5) == (0, 0)
        assert g.cell_of(150, 150) == (9, 9)
        assert g.cell_of(55, 25) == (5, 2)

    def test_cell_center_roundtrip(self):
        g = GridSpec(Rect(0, 0, 100, 100), 10, 10)
        x, y = g.cell_center(3, 7)
        assert g.cell_of(x, y) == (3, 7)

    def test_bin_centers_shape(self):
        g = GridSpec(Rect(0, 0, 100, 100), 8, 4)
        X, Y = bin_centers(g)
        assert X.shape == (4, 8)
        assert X[0, 0] == pytest.approx(100 / 16)


class TestRasterizePower:
    def test_power_conserved(self):
        g = GridSpec(Rect(0, 0, 100, 100), 16, 16)
        p = Placement(Module("a", 30, 40, power=2.5), 10, 20, die=0)
        pm = rasterize_power([p], g, die=0)
        assert pm.sum() == pytest.approx(2.5, rel=1e-9)

    def test_wrong_die_excluded(self):
        g = GridSpec(Rect(0, 0, 100, 100), 8, 8)
        p = Placement(Module("a", 30, 40, power=2.5), 10, 20, die=1)
        assert rasterize_power([p], g, die=0).sum() == 0.0

    def test_activity_scales(self):
        g = GridSpec(Rect(0, 0, 100, 100), 8, 8)
        p = Placement(Module("a", 30, 40, power=2.0), 10, 20, die=0)
        pm = rasterize_power([p], g, die=0, activity={"a": 0.5})
        assert pm.sum() == pytest.approx(1.0, rel=1e-9)

    def test_voltage_scales_power(self):
        g = GridSpec(Rect(0, 0, 100, 100), 8, 8)
        p = Placement(Module("a", 30, 40, power=2.0), 10, 20, die=0, voltage=0.8)
        pm = rasterize_power([p], g, die=0)
        assert pm.sum() == pytest.approx(2.0 * 0.817, rel=1e-9)

    def test_clipped_at_outline(self):
        g = GridSpec(Rect(0, 0, 100, 100), 8, 8)
        # half of the module hangs outside the outline
        p = Placement(Module("a", 40, 40, power=2.0), 80, 30, die=0)
        pm = rasterize_power([p], g, die=0)
        assert pm.sum() == pytest.approx(1.0, rel=1e-9)

    @given(
        st.floats(min_value=0, max_value=60),
        st.floats(min_value=0, max_value=60),
        st.floats(min_value=5, max_value=40),
        st.floats(min_value=5, max_value=40),
    )
    @settings(max_examples=40)
    def test_power_conservation_property(self, x, y, w, h):
        g = GridSpec(Rect(0, 0, 100, 100), 16, 16)
        p = Placement(Module("a", w, h, power=1.0), x, y, die=0)
        pm = rasterize_power([p], g, die=0)
        assert pm.sum() == pytest.approx(1.0, rel=1e-6)

    def test_rasterize_value_map(self):
        g = GridSpec(Rect(0, 0, 100, 100), 4, 4)
        out = rasterize_value_map([(Rect(0, 0, 50, 50), 8.0)], g)
        assert out.sum() == pytest.approx(8.0)
        assert out[0, 0] == pytest.approx(2.0)
        assert out[3, 3] == 0.0
