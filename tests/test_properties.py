"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.leakage.entropy import nested_means_classes, spatial_entropy
from repro.leakage.pearson import pearson
from repro.leakage.stability import stability_map
from repro.power.voltages import delay_scale_for, feasible_voltages, power_scale_for
from repro.timing.elmore import net_delay_ns


small_maps = hnp.arrays(
    np.float64,
    st.tuples(st.integers(3, 10), st.integers(3, 10)),
    elements=st.floats(0, 100, allow_nan=False),
)


class TestLeakageProperties:
    @given(small_maps)
    @settings(max_examples=40, deadline=None)
    def test_entropy_nonnegative_and_finite(self, pm):
        s = spatial_entropy(pm)
        assert np.isfinite(s)
        assert s >= 0.0

    @given(small_maps)
    @settings(max_examples=40, deadline=None)
    def test_entropy_invariant_to_scaling(self, pm):
        """Classes come from nested means: positive scaling preserves
        the partition, hence the entropy."""
        s1 = spatial_entropy(pm)
        s2 = spatial_entropy(pm * 3.7)
        assert s1 == pytest.approx(s2, rel=1e-9, abs=1e-9)

    @given(small_maps)
    @settings(max_examples=40, deadline=None)
    def test_nested_means_labels_dense(self, pm):
        labels = nested_means_classes(pm)
        unique = np.unique(labels)
        assert unique.min() == 0
        assert np.array_equal(unique, np.arange(unique.size))

    @given(st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_stability_bounded(self, m, seed):
        rng = np.random.default_rng(seed)
        ps = [rng.random((4, 4)) for _ in range(m)]
        ts = [rng.random((4, 4)) for _ in range(m)]
        s = stability_map(ps, ts)
        assert np.all(s <= 1.0 + 1e-9)
        assert np.all(s >= -1.0 - 1e-9)

    @given(
        hnp.arrays(np.float64, (16,), elements=st.floats(-1e3, 1e3)),
        st.floats(min_value=0.1, max_value=100),
        st.floats(min_value=-50, max_value=50),
    )
    @settings(max_examples=40)
    def test_pearson_affine_invariance(self, a, scale, shift):
        # affine maps only preserve correlation while the data's variation
        # survives float rounding: a tiny spread around a large shift
        # (e.g. 1e-111 + 1.0 == 1.0) collapses to a constant array, which
        # is degenerate (r := 0), not a counterexample — and a spread that
        # survives but sits near eps relative to the shifted magnitude
        # (e.g. [1 + 1e-13, 1, ...]) loses most of its bits to cancellation
        # when centered, so its correlation is noise, not a counterexample
        shifted = a * scale + shift
        assume(np.ptp(shifted) > 1e-6 * max(np.max(np.abs(shifted)), 1.0))
        b = np.linspace(0, 1, 16)
        r1 = pearson(a, b)
        r2 = pearson(a * scale + shift, b)
        assert r1 == pytest.approx(r2, abs=1e-9)


class TestVoltageProperties:
    @given(st.floats(min_value=0.8, max_value=1.2))
    @settings(max_examples=40)
    def test_power_delay_tradeoff(self, volts):
        """Higher supply: more power, less delay — always."""
        p, d = power_scale_for(volts), delay_scale_for(volts)
        p_hi, d_hi = power_scale_for(min(1.2, volts + 0.05)), delay_scale_for(
            min(1.2, volts + 0.05)
        )
        assert p_hi >= p - 1e-12
        assert d_hi <= d + 1e-12

    @given(st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=40)
    def test_feasible_set_monotone_in_slack(self, slack):
        """More slack never shrinks the feasible voltage set."""
        smaller = {lv.volts for lv in feasible_voltages(slack)}
        larger = {lv.volts for lv in feasible_voltages(slack + 0.5)}
        assert smaller <= larger


class TestElmoreProperties:
    @given(
        st.floats(min_value=0, max_value=5e4),
        st.floats(min_value=0, max_value=5e4),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60)
    def test_monotone_in_all_arguments(self, l1, dl, sinks, tsvs):
        base = net_delay_ns(l1, sinks, tsvs)
        assert net_delay_ns(l1 + dl, sinks, tsvs) >= base - 1e-15
        assert net_delay_ns(l1, sinks + 1, tsvs) >= base - 1e-15
        assert net_delay_ns(l1, sinks, tsvs + 1) >= base - 1e-15
