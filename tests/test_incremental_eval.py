"""Incremental (dirty-die) cost evaluation against the force_full oracle.

The incremental path repacks only the dies a move touched and reuses
every other memoized term; these tests assert it is *numerically
indistinguishable* (1e-9) from a from-scratch evaluation over long
random move sequences, including accept/reject lineages, module
migrations between dies, and three-die stacks.
"""

import numpy as np
import pytest

from repro.benchmarks.generator import BenchmarkSpec, generate_circuit
from repro.floorplan.annealer import AnnealConfig, anneal
from repro.floorplan.moves import MOVE_NAMES, MoveRecord, apply_random_move
from repro.floorplan.objectives import (
    CostBreakdown,
    CostEvaluator,
    FloorplanMode,
    ObjectiveWeights,
)
from repro.floorplan.seqpair import LayoutState
from repro.layout.die import StackConfig
from repro.thermal.fast import FastThermalModel

FIELDS = tuple(CostBreakdown._FIELDS) + ("tsv_crossings",)


def _circuit(num_modules=14, seed=5):
    spec = BenchmarkSpec("tiny", 0, num_modules, 1, 40, 8, 0.25, 1.2, seed=seed)
    circ = generate_circuit(spec)
    return circ, spec.outline


def _evaluators(circ, stack, mode=FloorplanMode.TSC_AWARE):
    """A matched (incremental, oracle) evaluator pair refreshing every term
    every iteration, so every cost component is exercised each move."""
    kwargs = dict(
        mode=mode,
        grid_nx=8,
        grid_ny=8,
        timing_every=1,
        thermal_every=1,
        assignment_every=1,
        thermal_model=FastThermalModel(num_dies=stack.num_dies),
        auto_calibrate=False,
    )
    inc = CostEvaluator(stack, circ.nets, circ.terminals, **kwargs)
    full = CostEvaluator(stack, circ.nets, circ.terminals, **kwargs)
    return inc, full


def _assert_matches(bd_inc, bd_full, context):
    for field in FIELDS:
        assert getattr(bd_inc, field) == pytest.approx(
            getattr(bd_full, field), abs=1e-9
        ), (context, field)


class TestMoveRecords:
    def test_record_is_still_a_tag(self):
        rec = MoveRecord("swap_s1", {0})
        assert rec == "swap_s1"
        assert rec in MOVE_NAMES
        assert rec.dies == frozenset({0})

    def test_moves_report_touched_dies(self):
        circ, outline = _circuit()
        stack = StackConfig(outline)
        rng = np.random.default_rng(3)
        state = LayoutState.initial(circ.modules, stack, rng)
        for _ in range(200):
            before = dict(state.die_of)
            rec = apply_random_move(state, rng)
            assert rec in MOVE_NAMES
            changed = {
                d
                for name in state.modules
                for d in (before[name], state.die_of[name])
                if before[name] != state.die_of[name]
            }
            # every die whose membership changed must be reported dirty
            assert changed <= set(rec.dies)
            for d in rec.dies:
                assert 0 <= d < stack.num_dies


class TestIncrementalMatchesOracle:
    @pytest.mark.parametrize("num_dies", [2, 3])
    def test_random_walk_matches_force_full(self, num_dies):
        """A few hundred random moves with a mixed accept/reject lineage."""
        circ, outline = _circuit()
        stack = StackConfig(outline, num_dies=num_dies)
        inc, full = _evaluators(circ, stack)
        rng = np.random.default_rng(11)
        state = LayoutState.initial(circ.modules, stack, rng)

        bd_i = inc.evaluate(state, force_full=True)
        inc.commit()
        bd_f = full.evaluate(state, force_full=True)
        _assert_matches(bd_i, bd_f, "initial")

        for step in range(300):
            candidate = state.copy()
            rec = apply_random_move(candidate, rng)
            bd_i = inc.evaluate(candidate, dirty_dies=rec.dies)
            bd_f = full.evaluate(candidate, force_full=True)
            _assert_matches(bd_i, bd_f, f"step {step} ({rec})")
            if rng.random() < 0.5:  # accept
                state = candidate
                inc.commit()
        assert inc.eval_stats["incremental"] == 300

    def test_power_aware_mode_matches_too(self):
        circ, outline = _circuit(num_modules=10, seed=9)
        stack = StackConfig(outline)
        inc, full = _evaluators(circ, stack, mode=FloorplanMode.POWER_AWARE)
        rng = np.random.default_rng(2)
        state = LayoutState.initial(circ.modules, stack, rng)
        inc.evaluate(state, force_full=True)
        inc.commit()
        full.evaluate(state, force_full=True)
        for step in range(120):
            candidate = state.copy()
            rec = apply_random_move(candidate, rng)
            bd_i = inc.evaluate(candidate, dirty_dies=rec.dies)
            bd_f = full.evaluate(candidate, force_full=True)
            _assert_matches(bd_i, bd_f, f"step {step}")
            state = candidate
            inc.commit()

    def test_dirty_dies_without_baseline_falls_back_to_full(self):
        circ, outline = _circuit(num_modules=8, seed=1)
        stack = StackConfig(outline)
        inc, _ = _evaluators(circ, stack)
        rng = np.random.default_rng(0)
        state = LayoutState.initial(circ.modules, stack, rng)
        inc.evaluate(state, dirty_dies={0})  # nothing committed yet
        assert inc.eval_stats["full"] == 1
        assert inc.eval_stats["incremental"] == 0


class TestAnnealerEvaluatorHygiene:
    def test_anneal_restores_evaluator_weights(self):
        """Regression: the compaction phase used to multiply the outline
        weight 6x *permanently*, compounding on every anneal() call that
        reused an evaluator."""
        circ, outline = _circuit(num_modules=8, seed=3)
        stack = StackConfig(outline)
        evaluator = CostEvaluator(
            stack,
            circ.nets,
            circ.terminals,
            grid_nx=8,
            grid_ny=8,
            thermal_model=FastThermalModel(num_dies=2),
            auto_calibrate=False,
        )
        original = evaluator.weights
        config = AnnealConfig(
            iterations=30, calibration_samples=4, grid_nx=8, grid_ny=8
        )
        first = anneal(circ.modules, stack, circ.nets, circ.terminals,
                       config=config, evaluator=evaluator)
        assert evaluator.weights == original
        second = anneal(circ.modules, stack, circ.nets, circ.terminals,
                        config=config, evaluator=evaluator)
        assert evaluator.weights == original
        # identical seeds + restored weights => identical outcomes
        assert second.cost == pytest.approx(first.cost)

    def test_incremental_and_oracle_anneal_agree(self):
        """The full SA loop lands on the same floorplan either way when
        every slow term refreshes every iteration."""
        circ, outline = _circuit(num_modules=8, seed=7)
        stack = StackConfig(outline)
        results = []
        for incremental in (True, False):
            config = AnnealConfig(
                iterations=60,
                calibration_samples=4,
                grid_nx=8,
                grid_ny=8,
                timing_every=1,
                thermal_every=1,
                assignment_every=1,
                incremental=incremental,
            )
            evaluator = CostEvaluator(
                stack,
                circ.nets,
                circ.terminals,
                grid_nx=8,
                grid_ny=8,
                timing_every=1,
                thermal_every=1,
                assignment_every=1,
                thermal_model=FastThermalModel(num_dies=2),
                auto_calibrate=False,
            )
            results.append(
                anneal(circ.modules, stack, circ.nets, circ.terminals,
                       config=config, evaluator=evaluator)
            )
        inc_result, full_result = results
        assert inc_result.cost == pytest.approx(full_result.cost, abs=1e-9)
        assert inc_result.state.die_of == full_result.state.die_of
